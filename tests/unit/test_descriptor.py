"""Unit tests for command descriptors, routing declarations and service specs."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core import CommandDescriptor, Free, Keyed, Serial, ServiceSpec


def make_spec():
    return ServiceSpec(
        "demo",
        [
            CommandDescriptor(name="put", writes=True,
                              routing=Keyed(extractor=lambda a: a["k"], domain="k")),
            CommandDescriptor(name="get", writes=False,
                              routing=Keyed(extractor=lambda a: a["k"], domain="k")),
            CommandDescriptor(name="wipe", writes=True, routing=Serial()),
            CommandDescriptor(name="ping", writes=False, routing=Free()),
        ],
    )


def test_routing_kinds():
    assert Serial().kind() == "serial"
    assert Keyed(extractor=lambda a: a).kind() == "keyed"
    assert Free().kind() == "free"


def test_descriptor_conflict_key_only_for_keyed():
    keyed = CommandDescriptor(name="x", routing=Keyed(extractor=lambda a: a["k"]))
    serial = CommandDescriptor(name="y", routing=Serial())
    assert keyed.conflict_key({"k": 5}) == 5
    assert serial.conflict_key({"k": 5}) is None


def test_spec_rejects_duplicate_commands():
    with pytest.raises(ConfigurationError):
        ServiceSpec("dup", [CommandDescriptor(name="a"), CommandDescriptor(name="a")])


def test_spec_lookup_and_membership():
    spec = make_spec()
    assert "put" in spec
    assert "missing" not in spec
    assert spec.descriptor("get").writes is False
    with pytest.raises(ConfigurationError):
        spec.descriptor("missing")


def test_spec_command_names_and_iteration():
    spec = make_spec()
    assert set(spec.command_names()) == {"put", "get", "wipe", "ping"}
    assert len(list(spec)) == 4


def test_spec_writes_and_routing_shortcuts():
    spec = make_spec()
    assert spec.writes("put") is True
    assert isinstance(spec.routing("wipe"), Serial)


def test_spec_validate_rejects_writing_free_command():
    spec = ServiceSpec(
        "bad", [CommandDescriptor(name="oops", writes=True, routing=Free())]
    )
    with pytest.raises(ConfigurationError):
        spec.validate()


def test_spec_validate_accepts_sane_declarations():
    assert make_spec().validate() is not None
