"""Unit tests for the shared checkpoint policy."""

import pytest

from repro.common.checkpoint import CheckpointPolicy, estimate_checkpoint_size
from repro.common.errors import ConfigurationError


class TestValidation:
    def test_needs_at_least_one_trigger(self):
        with pytest.raises(ConfigurationError):
            CheckpointPolicy()

    def test_rejects_non_positive_triggers(self):
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(every_messages=0)
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(every_seconds=0.0)
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(every_messages=10, max_replay_lag=-1)

    def test_repr_names_the_knobs(self):
        policy = CheckpointPolicy(every_messages=5, every_seconds=1.0, max_replay_lag=9)
        assert "every_messages=5" in repr(policy)
        assert "max_replay_lag=9" in repr(policy)


class TestDue:
    def test_message_trigger(self):
        policy = CheckpointPolicy(every_messages=10)
        assert not policy.due(9, 1e9)  # no time trigger configured
        assert policy.due(10, 0.0)

    def test_time_trigger(self):
        policy = CheckpointPolicy(every_seconds=0.5)
        assert not policy.due(10_000, 0.49)
        assert policy.due(0, 0.5)

    def test_either_trigger_fires(self):
        policy = CheckpointPolicy(every_messages=10, every_seconds=0.5)
        assert policy.due(10, 0.0)
        assert policy.due(0, 0.5)
        assert not policy.due(9, 0.49)


class TestReplayable:
    def test_unbounded_horizon_pins_forever(self):
        policy = CheckpointPolicy(every_messages=10)
        assert policy.replayable(10**9)

    def test_bounded_horizon(self):
        policy = CheckpointPolicy(every_messages=10, max_replay_lag=100)
        assert policy.replayable(100)
        assert not policy.replayable(101)


def test_estimate_checkpoint_size_importable_from_common():
    # Shared by both runtimes; the historical import path in
    # repro.replication.base must keep working too.
    from repro.replication.base import estimate_checkpoint_size as legacy

    assert legacy is estimate_checkpoint_size
    assert estimate_checkpoint_size(None) == 4096
    assert estimate_checkpoint_size({"a": b"xy"}) == 16 + (1 + 8) + (2 + 8)
