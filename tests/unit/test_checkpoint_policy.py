"""Unit tests for the shared checkpoint policy, the delta-chain cadence
(``full_every``), the compression cost model and the size estimator."""

import pytest

from repro.common.checkpoint import (
    FAST_COMPRESSION,
    NO_COMPRESSION,
    TIGHT_COMPRESSION,
    CheckpointPolicy,
    CompressionModel,
    compact_chain,
    estimate_checkpoint_size,
    merge_deltas,
    restore_chain,
)
from repro.common.errors import CheckpointError, ConfigurationError


class TestValidation:
    def test_needs_at_least_one_trigger(self):
        with pytest.raises(ConfigurationError):
            CheckpointPolicy()

    def test_rejects_non_positive_triggers(self):
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(every_messages=0)
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(every_seconds=0.0)
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(every_messages=10, max_replay_lag=-1)

    def test_full_every_validation(self):
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(every_messages=10, full_every=0)
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(every_messages=10, full_every=-3)
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(every_messages=10, full_every=2.5)
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(every_messages=10, full_every=True)  # bools rejected
        # None is treated as 1 (deltas disabled).
        assert CheckpointPolicy(every_messages=10, full_every=None).full_every == 1

    def test_compression_validation(self):
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(every_messages=10, compression="zstd")
        with pytest.raises(ConfigurationError):
            CompressionModel(ratio=0.0)
        with pytest.raises(ConfigurationError):
            CompressionModel(ratio=1.5)
        with pytest.raises(ConfigurationError):
            CompressionModel(cpu_seconds_per_byte=-1e-9)
        # None means the no-op model.
        assert CheckpointPolicy(every_messages=10).compression is NO_COMPRESSION

    def test_repr_names_the_knobs(self):
        policy = CheckpointPolicy(
            every_messages=5, every_seconds=1.0, max_replay_lag=9,
            full_every=4, compression=FAST_COMPRESSION,
        )
        assert "every_messages=5" in repr(policy)
        assert "max_replay_lag=9" in repr(policy)
        assert "full_every=4" in repr(policy)
        assert "'fast'" in repr(policy)


class TestDue:
    def test_message_trigger(self):
        policy = CheckpointPolicy(every_messages=10)
        assert not policy.due(9, 1e9)  # no time trigger configured
        assert policy.due(10, 0.0)

    def test_time_trigger(self):
        policy = CheckpointPolicy(every_seconds=0.5)
        assert not policy.due(10_000, 0.49)
        assert policy.due(0, 0.5)

    def test_either_trigger_fires(self):
        policy = CheckpointPolicy(every_messages=10, every_seconds=0.5)
        assert policy.due(10, 0.0)
        assert policy.due(0, 0.5)
        assert not policy.due(9, 0.49)

    def test_message_trigger_boundary_is_inclusive(self):
        """Exactly ``every_messages`` ordered messages is due, one less is not."""
        policy = CheckpointPolicy(every_messages=1)
        assert not policy.due(0, 0.0)
        assert policy.due(1, 0.0)
        policy = CheckpointPolicy(every_messages=100)
        assert not policy.due(99, 0.0)
        assert policy.due(100, 0.0)
        assert policy.due(101, 0.0)

    def test_time_trigger_boundary_at_equality(self):
        """Elapsed time exactly equal to ``every_seconds`` is due."""
        policy = CheckpointPolicy(every_seconds=2.0)
        assert not policy.due(10**9, 1.9999999)
        assert policy.due(0, 2.0)
        assert policy.due(0, 2.0000001)

    def test_both_triggers_racing_at_their_boundaries(self):
        """Both triggers hitting their exact thresholds together fire once
        (due is a single decision, not one per trigger)."""
        policy = CheckpointPolicy(every_messages=10, every_seconds=0.5)
        assert policy.due(10, 0.5)
        # One at threshold, the other just below: still due (OR semantics).
        assert policy.due(10, 0.4999)
        assert policy.due(9, 0.5)
        assert not policy.due(9, 0.4999)


class TestTakeFull:
    def test_full_every_one_means_every_checkpoint_is_full(self):
        policy = CheckpointPolicy(every_messages=10, full_every=1)
        assert policy.take_full(0)
        assert policy.take_full(5)

    def test_full_every_n_allows_n_minus_one_deltas(self):
        policy = CheckpointPolicy(every_messages=10, full_every=4)
        assert not policy.take_full(0)  # right after a full: delta
        assert not policy.take_full(1)
        assert not policy.take_full(2)
        assert policy.take_full(3)  # the 4th checkpoint of the cycle is full
        assert policy.take_full(7)  # never underestimates a long chain


class TestCompressionModel:
    def test_wire_size_scales_by_ratio(self):
        model = CompressionModel("half", ratio=0.5, cpu_seconds_per_byte=1e-9)
        assert model.wire_size(1000) == 500
        assert model.wire_size(0) == 0
        assert model.wire_size(1) == 1  # never rounds a payload to nothing

    def test_cpu_seconds_scales_by_raw_bytes(self):
        model = CompressionModel("half", ratio=0.5, cpu_seconds_per_byte=2e-9)
        assert model.cpu_seconds(1_000_000) == pytest.approx(2e-3)
        assert model.cpu_seconds(0) == 0.0

    def test_no_compression_is_identity(self):
        assert NO_COMPRESSION.wire_size(12345) == 12345
        assert NO_COMPRESSION.cpu_seconds(12345) == 0.0

    def test_presets_trade_ratio_for_cpu(self):
        assert TIGHT_COMPRESSION.ratio < FAST_COMPRESSION.ratio < 1.0
        assert TIGHT_COMPRESSION.cpu_seconds_per_byte > FAST_COMPRESSION.cpu_seconds_per_byte


class TestRestoreChain:
    class FakeService:
        def __init__(self):
            self.applied = []

        def restore(self, payload):
            self.applied = [("full", payload)]
            return self

        def apply_delta(self, payload):
            self.applied.append(("delta", payload))
            return self

    def test_applies_base_then_deltas_in_order(self):
        service = restore_chain(
            self.FakeService(),
            [
                {"kind": "full", "sequence": 1, "payload": "base"},
                {"kind": "delta", "sequence": 2, "payload": "d1"},
                {"kind": "delta", "sequence": 3, "payload": "d2"},
            ],
        )
        assert service.applied == [("full", "base"), ("delta", "d1"), ("delta", "d2")]

    def test_rejects_empty_and_malformed_chains_with_typed_error(self):
        """Malformed chains raise :class:`CheckpointError` — the typed error
        recovery negotiation catches to fall back to another path — not a
        generic configuration complaint."""
        with pytest.raises(CheckpointError):
            restore_chain(self.FakeService(), [])
        with pytest.raises(CheckpointError):
            restore_chain(
                self.FakeService(), [{"kind": "delta", "payload": "d"}]
            )
        with pytest.raises(CheckpointError):
            restore_chain(
                self.FakeService(),
                [
                    {"kind": "full", "payload": "a"},
                    {"kind": "full", "payload": "b"},
                ],
            )

    def test_malformed_chain_leaves_the_service_untouched(self):
        """Validation runs before any restore/apply call, so a failed
        negotiation attempt does not corrupt the service it probed."""
        service = self.FakeService()
        with pytest.raises(CheckpointError):
            restore_chain(service, [{"kind": "delta", "payload": "d"}])
        assert service.applied == []
        with pytest.raises(CheckpointError):
            restore_chain(
                service,
                [
                    {"kind": "full", "payload": "a"},
                    {"kind": "delta", "payload": "d"},
                    {"kind": "full", "payload": "b"},
                ],
            )
        assert service.applied == []


class TestCompaction:
    def test_compact_after_validation(self):
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(every_messages=10, compact_after=1)
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(every_messages=10, compact_after=0)
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(every_messages=10, compact_after=2.5)
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(every_messages=10, compact_after=True)
        assert CheckpointPolicy(every_messages=10).compact_after is None

    def test_compact_due_boundary(self):
        policy = CheckpointPolicy(every_messages=10, compact_after=3)
        assert not policy.compact_due(2)
        assert policy.compact_due(3)
        assert policy.compact_due(4)
        disabled = CheckpointPolicy(every_messages=10)
        assert not disabled.compact_due(10**6)

    def test_compact_chain_short_chains_are_copied_not_merged(self):
        chain = [
            {"kind": "full", "sequence": 1, "payload": "base"},
            {"kind": "delta", "sequence": 2,
             "payload": {"order": 4, "changes": [(1, b"a")], "deletions": []}},
        ]
        compacted = compact_chain(chain)
        assert compacted == chain
        assert compacted is not chain  # a new list, input never mutated

    def test_compact_chain_merges_deltas_onto_the_last_cut(self):
        chain = [
            {"kind": "full", "sequence": 1, "payload": "base"},
            {"kind": "delta", "sequence": 2,
             "payload": {"order": 4, "changes": [(1, b"a"), (2, b"b")],
                         "deletions": [9]}},
            {"kind": "delta", "sequence": 3,
             "payload": {"order": 4, "changes": [(2, b"B"), (9, b"back")],
                         "deletions": [1]}},
        ]
        compacted = compact_chain(chain)
        assert [entry["kind"] for entry in compacted] == ["full", "delta"]
        assert compacted[0] is chain[0]  # base reused untouched
        assert compacted[1]["sequence"] == 3  # stamped with the tip cut
        merged = compacted[1]["payload"]
        # Last-writer-wins with deletions folded: 1 written-then-deleted,
        # 9 deleted-then-recreated, 2 overwritten.
        assert merged["changes"] == [(2, b"B"), (9, b"back")]
        assert merged["deletions"] == [1]
        # The original chain is untouched.
        assert len(chain) == 3

    def test_compact_chain_rejects_malformed_chains(self):
        with pytest.raises(CheckpointError):
            compact_chain([])
        with pytest.raises(CheckpointError):
            compact_chain([{"kind": "delta", "sequence": 1, "payload": {}}])

    def test_merge_deltas_rejects_mismatched_shapes(self):
        tree_delta = {"order": 4, "changes": [], "deletions": []}
        fs_delta = {"changed": {}, "removed": [], "fd_table": {},
                    "next_fd": 3, "next_ino": 1}
        with pytest.raises(CheckpointError):
            merge_deltas(tree_delta, fs_delta)
        with pytest.raises(CheckpointError):
            merge_deltas({"bogus": 1}, {"bogus": 2})
        with pytest.raises(CheckpointError):
            merge_deltas(None, tree_delta)


class TestReplayable:
    def test_unbounded_horizon_pins_forever(self):
        policy = CheckpointPolicy(every_messages=10)
        assert policy.replayable(10**9)

    def test_bounded_horizon(self):
        policy = CheckpointPolicy(every_messages=10, max_replay_lag=100)
        assert policy.replayable(100)
        assert not policy.replayable(101)


def test_estimate_checkpoint_size_importable_from_common():
    # Shared by both runtimes; the historical import path in
    # repro.replication.base must keep working too.
    from repro.replication.base import estimate_checkpoint_size as legacy

    assert legacy is estimate_checkpoint_size
    assert estimate_checkpoint_size(None) == 4096
    assert estimate_checkpoint_size({"a": b"xy"}) == 16 + (1 + 8) + (2 + 8)


class TestEstimateCheckpointSize:
    def test_sets_and_frozensets_are_containers_not_leaves(self):
        # 16-byte container header plus the walked contents — the same
        # charge as a list of the same elements, not a flat 8 bytes.
        assert estimate_checkpoint_size(set()) == 16
        assert estimate_checkpoint_size({7}) == 16 + 8
        assert estimate_checkpoint_size(frozenset({7, 9})) == 16 + 8 + 8
        assert estimate_checkpoint_size({"ab"}) == 16 + (2 + 8)
        assert estimate_checkpoint_size({1, 2, 3}) == estimate_checkpoint_size(
            [1, 2, 3]
        )

    def test_small_ints_and_floats_cost_eight_bytes(self):
        assert estimate_checkpoint_size(0) == 8
        assert estimate_checkpoint_size(-1) == 8
        assert estimate_checkpoint_size(2**63 - 1) == 8
        assert estimate_checkpoint_size(3.14) == 8
        assert estimate_checkpoint_size(True) == 8  # bool stays a flat leaf

    def test_large_ints_are_charged_their_byte_width(self):
        assert estimate_checkpoint_size(2**64) == 9  # 65 bits -> 9 bytes
        assert estimate_checkpoint_size(2**128) == 17
        assert estimate_checkpoint_size(10**100) == (
            (10**100).bit_length() + 7
        ) // 8
        # Width applies inside containers too.
        assert estimate_checkpoint_size([2**128]) == 16 + 17

    def test_nested_container_pin(self):
        state = {"keys": {1, 2}, "big": 2**72, "rest": [b"xy"]}
        expected = (
            16  # outer dict
            + (4 + 8) + (16 + 8 + 8)  # "keys" -> set of two small ints
            + (3 + 8) + 10            # "big" -> 73-bit int = 10 bytes
            + (4 + 8) + (16 + (2 + 8))  # "rest" -> list of b"xy"
        )
        assert estimate_checkpoint_size(state) == expected
