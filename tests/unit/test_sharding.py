"""Unit tests for dynamic key-range sharding (ISSUE 10).

Covers the shard map's validation and lookup, the load tracker and
rebalance proposals, the router's atomic installs, the sequencer-side
staleness check, the C-G integration, and the hand-off artifact's
build-and-verify path.
"""

import pytest

from repro.common.errors import (
    CheckpointError,
    ConfigurationError,
    StaleShardRouteError,
)
from repro.core.cg import CGFunction
from repro.multicast.group import ALL_GROUPS
from repro.multicast.sharding import (
    HASH_SPACE,
    ShardLoadTracker,
    ShardMap,
    ShardRouter,
    build_shard_artifact,
    group_loads,
    propose_rebalance,
    stable_key_hash,
)
from repro.runtime.multicast import LocalAtomicMulticast
from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer


# ----------------------------------------------------------------------
# stable_key_hash
# ----------------------------------------------------------------------
def test_stable_hash_int_identity():
    # Small non-negative ints map to themselves so an integer keyspace is
    # contiguous in hash space — the key-range partition depends on it.
    for key in (0, 1, 7, 4095, HASH_SPACE - 1):
        assert stable_key_hash(key) == key


def test_stable_hash_is_deterministic_across_types():
    assert stable_key_hash("alpha") == stable_key_hash("alpha")
    assert stable_key_hash(("a", 3)) == stable_key_hash(("a", 3))
    assert stable_key_hash("alpha") != stable_key_hash("beta")
    assert 0 <= stable_key_hash("anything") < HASH_SPACE


def test_cg_shares_the_hash_implementation():
    # Static and dynamic routing must agree on where a key lives.
    assert CGFunction._stable_hash is stable_key_hash


# ----------------------------------------------------------------------
# ShardMap
# ----------------------------------------------------------------------
def test_shard_map_validation():
    with pytest.raises(ConfigurationError):
        ShardMap(0, [], [])  # no ranges
    with pytest.raises(ConfigurationError):
        ShardMap(0, [5], [1])  # must start at 0
    with pytest.raises(ConfigurationError):
        ShardMap(0, [0, 10, 10], [1, 2, 3])  # not strictly increasing
    with pytest.raises(ConfigurationError):
        ShardMap(0, [0, HASH_SPACE], [1, 2])  # bound out of hash space
    with pytest.raises(ConfigurationError):
        ShardMap(0, [0, 10], [1])  # bounds/groups length mismatch
    with pytest.raises(ConfigurationError):
        ShardMap(0, [0], [0])  # group ids start at 1
    with pytest.raises(ConfigurationError):
        ShardMap(0, [0, 10], [1, 5], mpl=4)  # group exceeds mpl
    with pytest.raises(ConfigurationError):
        ShardMap(-1, [0], [1])  # negative version


def test_initial_splits_the_key_space_evenly():
    shard_map = ShardMap.initial(4, key_space=256)
    assert shard_map.version == 0
    assert shard_map.bounds == (0, 64, 128, 192)
    assert shard_map.group_for_key(0) == 1
    assert shard_map.group_for_key(63) == 1
    assert shard_map.group_for_key(64) == 2
    assert shard_map.group_for_key(255) == 4
    # The last range extends to the end of hash space.
    assert shard_map.group_for_hash(HASH_SPACE - 1) == 4


def test_initial_without_key_space_splits_hash_space():
    shard_map = ShardMap.initial(2)
    assert shard_map.bounds == (0, HASH_SPACE // 2)
    assert shard_map.ranges() == [
        (0, HASH_SPACE // 2, 1),
        (HASH_SPACE // 2, HASH_SPACE, 2),
    ]


def test_split_and_move_bump_versions():
    shard_map = ShardMap.initial(2, key_space=100)
    split = shard_map.split(25)
    assert split.version == 1
    assert split.bounds == (0, 25, 50)
    assert split.groups == (1, 1, 2)
    moved = split.move(25, 2)
    assert moved.version == 2
    assert moved.group_for_key(30) == 2
    with pytest.raises(ConfigurationError):
        split.split(25)  # already a boundary
    with pytest.raises(ConfigurationError):
        split.move(26, 2)  # not a range start


def test_moved_ranges_are_coalesced():
    old = ShardMap.initial(4, key_space=400)
    new = old.split(50).move(50, 3)
    assert new.moved_ranges(old) == [(50, 100, 1, 3)]
    # Adjacent intervals moving between the same pair coalesce even when
    # a boundary from the other map cuts through them.
    merged = ShardMap(1, [0], [1])
    moves = merged.moved_ranges(old)
    assert moves == [(100, HASH_SPACE, 2, 1)] or all(
        entry[3] == 1 for entry in moves
    )


def test_wire_round_trip():
    shard_map = ShardMap.initial(3, key_space=99).split(10).move(10, 3)
    clone = ShardMap.from_wire(shard_map.to_wire(), mpl=3)
    assert clone == shard_map
    with pytest.raises(ConfigurationError):
        ShardMap.from_wire(shard_map.to_wire(), mpl=2)  # group 3 > mpl 2


# ----------------------------------------------------------------------
# Load tracking and rebalance proposals
# ----------------------------------------------------------------------
def test_tracker_counts_and_overflow():
    tracker = ShardLoadTracker(max_tracked=2)
    for _ in range(3):
        tracker.record(1)
    tracker.record(2)
    tracker.record(3)  # over the limit: counted as untracked
    assert tracker.snapshot() == {1: 3, 2: 1}
    assert tracker.untracked == 1
    tracker.reset()
    assert tracker.snapshot() == {}
    assert tracker.untracked == 0


def test_propose_rebalance_flattens_skew():
    shard_map = ShardMap.initial(4, key_space=400)
    # All load on group 1's range.
    counts = {h: 100 for h in range(0, 100, 5)}
    proposal = propose_rebalance(shard_map, counts, 4, min_imbalance=1.25)
    assert proposal is not None
    assert proposal.version == shard_map.version + 1
    before = group_loads(shard_map, counts)
    after = group_loads(proposal, counts)
    assert max(before.values()) == sum(counts.values())  # fully skewed
    assert max(after.values()) < max(before.values()) / 2
    assert len(after) == 4


def test_propose_rebalance_none_cases():
    shard_map = ShardMap.initial(4, key_space=400)
    assert propose_rebalance(shard_map, {}, 4) is None  # no load
    assert propose_rebalance(shard_map, {1: 5}, 1) is None  # mpl 1
    balanced = {h: 1 for h in range(0, 400, 7)}  # even spread
    assert propose_rebalance(shard_map, balanced, 4) is None


def test_router_routes_records_and_installs():
    router = ShardRouter(ShardMap.initial(2, key_space=100), 2)
    group, version = router.route_hash(10)
    assert (group, version) == (1, 0)
    assert router.tracker.snapshot() == {10: 1}
    successor = router.shard_map.split(25).move(25, 2)
    router.install(successor)
    assert router.route_hash(30)[0] == 2
    with pytest.raises(ConfigurationError):
        router.install(successor)  # version must advance
    with pytest.raises(ConfigurationError):
        ShardRouter(ShardMap(0, [0], [5]), 2)  # group exceeds mpl


# ----------------------------------------------------------------------
# C-G integration
# ----------------------------------------------------------------------
def test_cg_route_reports_shard_version():
    router = ShardRouter(ShardMap.initial(4, key_space=256), 4)
    cg = CGFunction(KVSTORE_SPEC, 4, router=router)
    groups, version = cg.route("update", {"key": 5, "value": b"x"})
    assert groups == frozenset({1}) and version == 0
    assert cg.group_of_key(200) == 4
    # Serial commands bypass the shard map entirely.
    groups, version = cg.route("insert", {"key": 5, "value": b"x"})
    assert groups is ALL_GROUPS and version is None
    router.install(router.shard_map.move(128, 1))
    groups, version = cg.route("update", {"key": 130, "value": b"x"})
    assert groups == frozenset({1}) and version == 1


def test_cg_without_router_keeps_modulo_rule():
    cg = CGFunction(KVSTORE_SPEC, 4)
    assert cg.group_of_key(6) == (6 % 4) + 1
    groups, version = cg.route("update", {"key": 6, "value": b"x"})
    assert groups == frozenset({3}) and version is None


# ----------------------------------------------------------------------
# Sequencer-side staleness check
# ----------------------------------------------------------------------
def test_multicast_rejects_stale_routings_before_sequencing():
    multicast = LocalAtomicMulticast(2)
    multicast.register_replica(0, range(1, 3))
    before = multicast.latest_sequence()
    with pytest.raises(StaleShardRouteError):
        multicast.multicast(frozenset({1}), {"cmd": 1}, shard_version=7)
    # The rejection happened before a sequence number was consumed.
    assert multicast.latest_sequence() == before
    assert multicast.stale_routings_rejected == 1
    # Matching versions pass.
    multicast.multicast(frozenset({1}), {"cmd": 1}, shard_version=0)
    assert multicast.latest_sequence() == before + 1


def test_shard_update_advances_version_atomically():
    multicast = LocalAtomicMulticast(2)
    multicast.register_replica(0, range(1, 3))
    router = ShardRouter(ShardMap.initial(2, key_space=100), 2)
    multicast.shard_router = router
    new_map = router.shard_map.split(25).move(25, 2)
    multicast.multicast_shard_update({"update": 0}, new_map)
    assert multicast.shard_version == new_map.version == 2
    assert router.shard_map == new_map
    with pytest.raises(StaleShardRouteError):
        multicast.multicast(frozenset({1}), {"cmd": 2}, shard_version=0)
    with pytest.raises(ConfigurationError):
        multicast.multicast_shard_update({"update": 1}, new_map)  # stale map


# ----------------------------------------------------------------------
# Hand-off artifacts
# ----------------------------------------------------------------------
def _kv_with_chain():
    """A KV service plus a realistic full+delta checkpoint chain."""
    service = KeyValueStoreServer()
    for key in range(16):
        service.execute("insert", {"key": key, "value": key.to_bytes(2, "big")})
    chain = [{"kind": "full", "sequence": 15, "payload": service.checkpoint()}]
    for key in range(4, 8):
        service.execute("update", {"key": key, "value": b"\xff\xff"})
    service.execute("delete", {"key": 12})
    chain.append(
        {"kind": "delta", "sequence": 20, "payload": service.delta_checkpoint()}
    )
    # Live tail past the chain tip, captured by the artifact's own delta.
    service.execute("insert", {"key": 2048, "value": b"tail"})
    return service, chain


def test_artifact_covers_exactly_the_moved_ranges():
    service, chain = _kv_with_chain()
    moved = [(4, 8, 1, 2), (2000, 2100, 2, 1)]
    artifact = build_shard_artifact(
        service, chain, moved, service_factory=KeyValueStoreServer
    )
    assert artifact["verified"] is True
    assert artifact["keys"] == 5  # keys 4..7 plus the live-tail 2048
    restored = KeyValueStoreServer()
    from repro.common.checkpoint import restore_chain

    restore_chain(restored, artifact["chain"])
    assert restored.snapshot() == {
        **{key: b"\xff\xff" for key in range(4, 8)},
        2048: b"tail",
    }
    assert artifact["bytes"] > 0
    assert artifact["ranges"] == [tuple(entry) for entry in moved]


def test_artifact_without_chain_filters_the_full_state():
    service = KeyValueStoreServer()
    for key in (1, 5, 9):
        service.execute("insert", {"key": key, "value": b"v"})
    artifact = build_shard_artifact(
        service, [], [(0, 6, 1, 2)], service_factory=KeyValueStoreServer
    )
    assert artifact["verified"] is True
    assert artifact["entries"] == 1
    assert artifact["keys"] == 2  # keys 1 and 5; 9 stays behind


def test_artifact_filters_deletions_into_the_moved_ranges():
    service, chain = _kv_with_chain()
    artifact = build_shard_artifact(
        service, chain, [(10, 14, 1, 3)],
        service_factory=KeyValueStoreServer,
    )
    assert artifact["verified"] is True
    restored = KeyValueStoreServer()
    from repro.common.checkpoint import restore_chain

    restore_chain(restored, artifact["chain"])
    # Key 12 was deleted after the full checkpoint: the filtered delta
    # must carry that deletion into the artifact.
    assert 12 not in restored.snapshot()
    assert set(restored.snapshot()) == {10, 11, 13}


def test_artifact_rejects_unknown_payload_shapes():
    service = KeyValueStoreServer()
    chain = [{"kind": "full", "sequence": 0, "payload": {"blob": b"opaque"}}]
    with pytest.raises(CheckpointError):
        build_shard_artifact(service, chain, [(0, 10, 1, 2)])
