"""Unit tests for the execution-mode planning logic (Algorithm 1, server side)."""

import pytest

from repro.common.errors import ProtocolError
from repro.core import plan_execution
from repro.multicast import ALL_GROUPS


def test_single_group_on_own_thread_is_parallel_mode():
    plan = plan_execution(frozenset({3}), thread_index=3, mpl=8)
    assert plan.mode == "parallel"
    assert plan.executes
    assert plan.executor == 3


def test_single_group_on_other_thread_is_ignored():
    plan = plan_execution(frozenset({3}), thread_index=4, mpl=8)
    assert plan.mode == "ignore"
    assert not plan.executes


def test_all_groups_lowest_thread_executes():
    plan = plan_execution(ALL_GROUPS, thread_index=1, mpl=4)
    assert plan.mode == "execute"
    assert plan.executor == 1
    assert plan.peers == (2, 3, 4)


def test_all_groups_other_threads_assist():
    plan = plan_execution(ALL_GROUPS, thread_index=3, mpl=4)
    assert plan.mode == "assist"
    assert plan.executor == 1
    assert not plan.executes


def test_subset_destinations_pick_minimum_as_executor():
    """Line 16: e <- min{j : g_j in gamma}."""
    plan = plan_execution(frozenset({5, 2, 7}), thread_index=2, mpl=8)
    assert plan.mode == "execute"
    assert plan.peers == (5, 7)
    assist = plan_execution(frozenset({5, 2, 7}), thread_index=7, mpl=8)
    assert assist.mode == "assist"
    assert assist.executor == 2


def test_thread_outside_destinations_ignores_synchronous_command():
    plan = plan_execution(frozenset({2, 3}), thread_index=4, mpl=8)
    assert plan.mode == "ignore"


def test_all_groups_with_single_thread_is_parallel():
    plan = plan_execution(ALL_GROUPS, thread_index=1, mpl=1)
    assert plan.mode == "parallel"


def test_invalid_thread_index_rejected():
    with pytest.raises(ProtocolError):
        plan_execution(frozenset({1}), thread_index=0, mpl=4)
    with pytest.raises(ProtocolError):
        plan_execution(frozenset({1}), thread_index=5, mpl=4)


def test_empty_destination_set_rejected():
    with pytest.raises(ProtocolError):
        plan_execution(frozenset(), thread_index=1, mpl=4)


def test_destination_outside_mpl_rejected():
    with pytest.raises(ProtocolError):
        plan_execution(frozenset({9}), thread_index=1, mpl=4)


def test_exactly_one_executor_per_command():
    """For any destination set, exactly one thread executes the command."""
    destinations = frozenset({2, 4, 6})
    executors = [
        plan_execution(destinations, thread_index=i, mpl=8).executes
        for i in range(1, 9)
    ]
    assert sum(executors) == 1


def test_every_destination_thread_participates():
    destinations = frozenset({2, 4, 6})
    modes = {
        i: plan_execution(destinations, thread_index=i, mpl=8).mode
        for i in range(1, 9)
    }
    assert modes[2] == "execute"
    assert modes[4] == modes[6] == "assist"
    assert all(modes[i] == "ignore" for i in (1, 3, 5, 7, 8))
