"""Unit tests for the closed/open-loop load generator (ISSUE 9).

Covers the three properties the rig's measurements rest on: schedules
are a pure function of the seed, closed-loop concurrency never exceeds
the configured client count, and the percentile summary matches a
hand-computed fixture.
"""

import asyncio

import pytest

from repro.common.errors import ConfigurationError
from repro.loadgen import (
    LoadConfig,
    generate_client_ops,
    open_arrival_times,
    parse_retry_after,
    run_load,
)
from repro.loadgen.runner import DEFAULT_RETRY_AFTER
from repro.metrics.recorders import LatencyRecorder


class _Headers:
    def __init__(self, mapping=None):
        self._mapping = {k.lower(): v for k, v in (mapping or {}).items()}

    def get(self, name, default=None):
        return self._mapping.get(name.lower(), default)


class _Response:
    def __init__(self, status_code, headers=None):
        self.status_code = status_code
        self.headers = _Headers(headers)


class _FakeFrontend:
    """Async client double: fixed per-request delay, scripted statuses."""

    def __init__(self, delay=0.001, statuses=None):
        self.delay = delay
        self.statuses = list(statuses or [])
        self.calls = []
        self.concurrent = 0
        self.peak_concurrent = 0
        #: Value served in the ``Retry-After`` header of 429 responses.
        self.retry_after = "0.001"

    async def request(self, method, path, json=None):
        self.calls.append((method, path, json))
        self.concurrent += 1
        self.peak_concurrent = max(self.peak_concurrent, self.concurrent)
        try:
            await asyncio.sleep(self.delay)
        finally:
            self.concurrent -= 1
        status = self.statuses.pop(0) if self.statuses else 200
        headers = {"retry-after": self.retry_after} if status == 429 else {}
        return _Response(status, headers)


# ----------------------------------------------------------------------
# Deterministic schedules
# ----------------------------------------------------------------------
class TestDeterministicSchedule:
    def test_same_seed_same_ops(self):
        config = LoadConfig(seed=42, requests_per_client=20, key_space=64)
        assert generate_client_ops(config, 5) == generate_client_ops(config, 5)

    def test_different_seed_different_ops(self):
        a = LoadConfig(seed=1, requests_per_client=20, key_space=64)
        b = LoadConfig(seed=2, requests_per_client=20, key_space=64)
        assert generate_client_ops(a, 5) != generate_client_ops(b, 5)

    def test_different_clients_different_streams(self):
        config = LoadConfig(seed=7, requests_per_client=20, key_space=64)
        assert generate_client_ops(config, 0) != generate_client_ops(config, 1)

    def test_ops_respect_read_fraction_extremes(self):
        reads = LoadConfig(seed=3, requests_per_client=30, read_fraction=1.0)
        writes = LoadConfig(seed=3, requests_per_client=30, read_fraction=0.0)
        assert all(op[0] == "GET" for op in generate_client_ops(reads, 0))
        assert all(op[0] == "PUT" for op in generate_client_ops(writes, 0))

    def test_write_ops_use_single_command_safe_bodies(self):
        config = LoadConfig(seed=3, requests_per_client=30, read_fraction=0.0)
        for _method, path, body in generate_client_ops(config, 2):
            assert path.startswith("/kv/")
            assert set(body) == {"value", "mode"}

    def test_zipfian_schedule_is_deterministic_too(self):
        config = LoadConfig(
            seed=9, requests_per_client=25, distribution="zipfian", theta=1.0
        )
        assert generate_client_ops(config, 1) == generate_client_ops(config, 1)

    def test_open_arrival_times_deterministic_and_increasing(self):
        config = LoadConfig(
            seed=11, clients=4, requests_per_client=5, arrival="open",
            open_rate=1000.0,
        )
        times = open_arrival_times(config)
        assert times == open_arrival_times(config)
        assert len(times) == 4 * 5
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            LoadConfig(clients=0).validate()
        with pytest.raises(ConfigurationError):
            LoadConfig(arrival="bursty").validate()
        with pytest.raises(ConfigurationError):
            LoadConfig(read_fraction=1.5).validate()
        with pytest.raises(ConfigurationError):
            LoadConfig(arrival="open", open_rate=0).validate()
        with pytest.raises(ConfigurationError):
            LoadConfig(max_backoff=0.0).validate()


# ----------------------------------------------------------------------
# Retry-After parsing (the header crosses a trust boundary)
# ----------------------------------------------------------------------
class TestRetryAfterParsing:
    def test_valid_values_pass_through(self):
        assert parse_retry_after("0.25", 5.0) == pytest.approx(0.25)
        assert parse_retry_after(2, 5.0) == pytest.approx(2.0)

    def test_malformed_values_fall_back_to_default(self):
        for raw in ("soon", "", "1.2.3", None, object()):
            assert parse_retry_after(raw, 5.0) == DEFAULT_RETRY_AFTER

    def test_non_finite_values_fall_back_to_default(self):
        for raw in ("nan", "inf", "-inf", float("nan"), float("inf")):
            assert parse_retry_after(raw, 5.0) == DEFAULT_RETRY_AFTER

    def test_negative_values_clamp_to_zero(self):
        assert parse_retry_after("-3", 5.0) == 0.0
        assert parse_retry_after(-0.001, 5.0) == 0.0

    def test_huge_values_clamp_to_max_backoff(self):
        assert parse_retry_after("86400", 5.0) == 5.0
        assert parse_retry_after("1e300", 0.5) == 0.5

    def test_malformed_header_does_not_crash_the_rig(self):
        # A server sending a word instead of seconds used to raise
        # ValueError out of run_load; now the op retries on the default
        # wait and completes.
        fake = _FakeFrontend(delay=0.0, statuses=[429, 200])
        fake.retry_after = "soon"
        config = LoadConfig(clients=1, requests_per_client=1, seed=8)
        result = asyncio.run(run_load(fake, config))
        assert result.retries == 1
        assert result.completed == 1

    def test_huge_header_is_bounded_by_max_backoff(self):
        fake = _FakeFrontend(delay=0.0, statuses=[429, 200])
        fake.retry_after = "86400"  # a day, per RFC; absurd for this rig
        config = LoadConfig(
            clients=1, requests_per_client=1, seed=8, max_backoff=0.001
        )
        result = asyncio.run(run_load(fake, config))
        assert result.completed == 1  # finished despite the day-long ask


# ----------------------------------------------------------------------
# Closed-loop concurrency bound
# ----------------------------------------------------------------------
class TestClosedLoopConcurrency:
    def test_concurrency_never_exceeds_client_count(self):
        fake = _FakeFrontend(delay=0.002)
        config = LoadConfig(clients=7, requests_per_client=4, seed=1)
        result = asyncio.run(run_load(fake, config))
        assert fake.peak_concurrent <= 7
        assert result.peak_concurrency <= 7
        assert result.completed == 7 * 4
        assert len(fake.calls) == 7 * 4

    def test_single_client_is_strictly_sequential(self):
        fake = _FakeFrontend(delay=0.001)
        config = LoadConfig(clients=1, requests_per_client=6, seed=2)
        result = asyncio.run(run_load(fake, config))
        assert fake.peak_concurrent == 1
        assert result.completed == 6

    def test_429_retries_are_counted_and_eventually_succeed(self):
        # First three responses saturate, then the window opens.
        fake = _FakeFrontend(delay=0.0, statuses=[429, 429, 429, 200])
        config = LoadConfig(clients=1, requests_per_client=1, seed=3)
        result = asyncio.run(run_load(fake, config))
        assert result.retries == 3
        assert result.completed == 1
        assert result.status_counts[429] == 3
        assert result.status_counts[200] == 1

    def test_retry_cap_drops_the_op(self):
        fake = _FakeFrontend(delay=0.0, statuses=[429] * 10)
        config = LoadConfig(
            clients=1, requests_per_client=1, seed=3, max_retries=4
        )
        result = asyncio.run(run_load(fake, config))
        assert result.dropped == 1
        assert result.completed == 0

    def test_503_counts_as_timeout_not_latency(self):
        fake = _FakeFrontend(delay=0.0, statuses=[503, 200])
        config = LoadConfig(clients=1, requests_per_client=2, seed=4)
        result = asyncio.run(run_load(fake, config))
        assert result.timeouts == 1
        assert result.completed == 1

    def test_open_arrival_does_not_retry_429(self):
        fake = _FakeFrontend(delay=0.0, statuses=[429, 200, 200])
        config = LoadConfig(
            clients=3, requests_per_client=1, arrival="open",
            open_rate=10_000.0, seed=5,
        )
        result = asyncio.run(run_load(fake, config))
        assert result.retries == 0
        assert result.status_counts.get(429) == 1
        # The 429'd op is terminal in open mode: only the 200s record.
        assert result.completed == 2


# ----------------------------------------------------------------------
# Percentile fixture
# ----------------------------------------------------------------------
class TestPercentileFixture:
    def test_summary_matches_hand_computed_values(self):
        # 1..1000 ms: index = round(f * 999) into the sorted samples.
        recorder = LatencyRecorder()
        for ms in range(1, 1001):
            recorder.record(ms / 1000.0)
        summary = recorder.summary()
        assert summary["count"] == 1000
        # Index formula: min(n-1, round(f*(n-1))) into the sorted samples.
        assert summary["p50"] == pytest.approx(0.501)   # round(499.5)=500
        assert summary["p99"] == pytest.approx(0.990)   # round(989.01)=989
        assert summary["p999"] == pytest.approx(0.999)  # round(998.001)=998
        assert summary["mean"] == pytest.approx(0.5005)

    def test_p999_on_small_sample_is_the_maximum(self):
        recorder = LatencyRecorder()
        for value in (0.010, 0.020, 0.500):
            recorder.record(value)
        assert recorder.p999() == pytest.approx(0.500)

    def test_result_record_carries_p999(self):
        fake = _FakeFrontend(delay=0.0005)
        config = LoadConfig(clients=2, requests_per_client=3, seed=6)
        result = asyncio.run(run_load(fake, config))
        record = result.to_record()
        assert set(record["latency"]) == {"count", "mean", "p50", "p99", "p999"}
        assert record["latency"]["count"] == 6
        assert record["throughput_rps"] > 0
