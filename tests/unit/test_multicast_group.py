"""Unit tests for multicast groups and the destination-to-stream mapping."""

import pytest

from repro.common.errors import ConfigurationError
from repro.multicast import ALL_GROUPS, GroupLayout


def test_layout_requires_positive_mpl():
    with pytest.raises(ConfigurationError):
        GroupLayout(0)


def test_layout_builds_one_group_per_thread_plus_all():
    layout = GroupLayout(4)
    assert [group.name for group in layout.groups] == ["g_all", "g1", "g2", "g3", "g4"]
    assert layout.stream_ids == [0, 1, 2, 3, 4]


def test_group_of_thread_is_one_based():
    layout = GroupLayout(3)
    assert layout.group_of_thread(1).group_id == 1
    assert layout.group_of_thread(3).group_id == 3
    with pytest.raises(ConfigurationError):
        layout.group_of_thread(4)
    with pytest.raises(ConfigurationError):
        layout.group_of_thread(0)


def test_thread_subscribes_to_own_group_and_all():
    """Each thread t_i belongs to g_i and g_all (paper section VI-A)."""
    layout = GroupLayout(4)
    assert layout.subscriptions_of_thread(2) == [0, 2]


def test_normalize_accepts_int_and_iterables():
    layout = GroupLayout(4)
    assert layout.normalize_destinations(3) == frozenset({3})
    assert layout.normalize_destinations([1, 2]) == frozenset({1, 2})
    assert layout.normalize_destinations(ALL_GROUPS) == frozenset({1, 2, 3, 4})


def test_normalize_rejects_empty_and_unknown_groups():
    layout = GroupLayout(2)
    with pytest.raises(ConfigurationError):
        layout.normalize_destinations([])
    with pytest.raises(ConfigurationError):
        layout.normalize_destinations([5])


def test_normalize_rejects_every_empty_iterable_shape():
    """An empty destination set would deliver the command nowhere and
    silently drop it; every way of spelling 'empty' must raise.  This
    validation is load-bearing for the dynamic ShardMap path: a buggy
    router returning no groups must fail loudly at multicast time."""
    layout = GroupLayout(4)
    empties = (
        [],
        (),
        set(),
        frozenset(),
        iter(()),                      # exhausted iterator
        (g for g in range(0)),         # empty generator
        {}.keys(),                     # empty dict view
    )
    for empty in empties:
        with pytest.raises(ConfigurationError):
            layout.normalize_destinations(empty)


def test_normalize_accepts_nonempty_generator_and_frozenset():
    """The same lazy shapes with members normalise like lists do."""
    layout = GroupLayout(4)
    assert layout.normalize_destinations(
        (g for g in (2, 4))
    ) == frozenset({2, 4})
    assert layout.normalize_destinations(frozenset({1})) == frozenset({1})
    assert layout.normalize_destinations({3}) == frozenset({3})


def test_single_group_message_uses_its_own_stream():
    layout = GroupLayout(8)
    assert layout.stream_for_destinations(frozenset({5})) == 5


def test_multi_group_message_uses_the_all_stream():
    layout = GroupLayout(8)
    assert layout.stream_for_destinations(frozenset({2, 3})) == GroupLayout.ALL_STREAM_ID


def test_all_groups_marker_uses_all_stream_even_with_one_thread():
    """With MPL=1 the prototype still routes 'all groups' through g_all."""
    layout = GroupLayout(1)
    assert layout.stream_for_destinations(ALL_GROUPS) == GroupLayout.ALL_STREAM_ID


def test_threads_for_destinations_sorted():
    layout = GroupLayout(8)
    assert layout.threads_for_destinations(frozenset({7, 2})) == [2, 7]


def test_delivering_threads_single_group():
    layout = GroupLayout(8)
    assert layout.delivering_threads(frozenset({3})) == [3]


def test_delivering_threads_multi_group_is_everyone():
    layout = GroupLayout(4)
    assert layout.delivering_threads(frozenset({1, 3})) == [1, 2, 3, 4]


def test_group_str_and_identity():
    layout = GroupLayout(2)
    assert str(layout.all_group) == "g_all"
    assert layout.all_group.group_id == 0
