"""Unit tests for the shared length-prefix + CRC-32 framing."""

import os

import pytest

from repro.common import framing
from repro.common.checkpoint_store import CheckpointStore


def test_roundtrip():
    payload = b"hello frame"
    frame = framing.encode_frame(framing.WIRE_MAGIC, payload)
    header, body = frame[: framing.HEADER_SIZE], frame[framing.HEADER_SIZE:]
    parsed = framing.parse_header(header, framing.WIRE_MAGIC)
    assert parsed is not None
    length, crc = parsed
    assert body == payload
    assert framing.payload_valid(body, length, crc)


def test_empty_payload_frames():
    frame = framing.encode_frame(framing.WIRE_MAGIC, b"")
    length, crc = framing.parse_header(frame, framing.WIRE_MAGIC)
    assert length == 0
    assert framing.payload_valid(b"", length, crc)


def test_wrong_magic_rejected():
    frame = framing.encode_frame(framing.SEGMENT_MAGIC, b"payload")
    assert framing.parse_header(frame, framing.WIRE_MAGIC) is None


def test_short_header_rejected():
    frame = framing.encode_frame(framing.WIRE_MAGIC, b"payload")
    assert framing.parse_header(frame[: framing.HEADER_SIZE - 1],
                                framing.WIRE_MAGIC) is None


def test_absurd_length_rejected():
    header = framing.HEADER.pack(
        framing.WIRE_MAGIC, framing.MAX_FRAME_BYTES + 1, 0
    )
    assert framing.parse_header(header, framing.WIRE_MAGIC) is None


@pytest.mark.parametrize("flip_at", [0, 3, 10])
def test_corrupted_payload_detected(flip_at):
    payload = b"x" * 16
    frame = framing.encode_frame(framing.WIRE_MAGIC, payload)
    length, crc = framing.parse_header(frame, framing.WIRE_MAGIC)
    body = bytearray(frame[framing.HEADER_SIZE:])
    body[flip_at] ^= 0xFF
    assert not framing.payload_valid(bytes(body), length, crc)


def test_truncated_payload_detected():
    payload = b"y" * 32
    frame = framing.encode_frame(framing.WIRE_MAGIC, payload)
    length, crc = framing.parse_header(frame, framing.WIRE_MAGIC)
    assert not framing.payload_valid(payload[:-1], length, crc)
    assert not framing.payload_valid(payload + b"z", length, crc)


def test_segment_files_use_shared_framing(tmp_path):
    """Checkpoint segments on disk are ordinary frames (magic PSMRSEG1)."""
    store = CheckpointStore(tmp_path / "replica-0")
    store.append({"kind": "full", "sequence": 7, "payload": {"a": b"\x01"}})
    [segment] = [
        name for name in os.listdir(store.directory) if name.endswith(".ckpt")
    ]
    data = (tmp_path / "replica-0" / segment).read_bytes()
    parsed = framing.parse_header(data[: framing.HEADER_SIZE],
                                  framing.SEGMENT_MAGIC)
    assert parsed is not None
    length, crc = parsed
    assert framing.payload_valid(data[framing.HEADER_SIZE:], length, crc)
    assert store.load_chain()[0]["sequence"] == 7
