"""Unit tests for configuration, ids, and RNG helpers."""

import pytest

from repro.common import (
    ClusterConfig,
    ConfigurationError,
    IdGenerator,
    MulticastConfig,
    SeededRNG,
    WorkloadConfig,
    derive_seed,
    make_command_uid,
)
from repro.common.config import CostModelConfig


# ----------------------------------------------------------------------
# Ids
# ----------------------------------------------------------------------
def test_id_generator_monotonic_per_scope():
    gen = IdGenerator()
    assert [gen.next("a"), gen.next("a"), gen.next("a")] == [0, 1, 2]


def test_id_generator_scopes_are_independent():
    gen = IdGenerator()
    gen.next("a")
    assert gen.next("b") == 0


def test_make_command_uid_coerces_to_ints():
    assert make_command_uid("3", 7.0) == (3, 7)


# ----------------------------------------------------------------------
# RNG
# ----------------------------------------------------------------------
def test_derive_seed_is_deterministic():
    assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")


def test_derive_seed_varies_with_labels():
    assert derive_seed(1, "a") != derive_seed(1, "b")


def test_seeded_rng_reproducible():
    first = SeededRNG(5)
    second = SeededRNG(5)
    assert [first.randint(0, 100) for _ in range(10)] == [
        second.randint(0, 100) for _ in range(10)
    ]


def test_seeded_rng_children_differ_from_parent():
    parent = SeededRNG(5)
    child = parent.child("stream", 1)
    other = parent.child("stream", 2)
    assert child.seed != other.seed


def test_seeded_rng_choice_and_sample():
    rng = SeededRNG(9)
    population = list(range(20))
    assert rng.choice(population) in population
    sample = rng.sample(population, 5)
    assert len(sample) == 5
    assert set(sample) <= set(population)


# ----------------------------------------------------------------------
# MulticastConfig
# ----------------------------------------------------------------------
def test_multicast_config_defaults_match_paper():
    config = MulticastConfig()
    assert config.acceptors_per_group == 3
    assert config.batch_max_bytes == 8 * 1024


def test_multicast_config_rejects_bad_merge_policy():
    with pytest.raises(ConfigurationError):
        MulticastConfig(merge_policy="magic").validate()


@pytest.mark.parametrize("field, value", [
    ("acceptors_per_group", 0),
    ("batch_max_bytes", 0),
    ("batch_max_commands", 0),
])
def test_multicast_config_rejects_nonpositive(field, value):
    config = MulticastConfig(**{field: value})
    with pytest.raises(ConfigurationError):
        config.validate()


# ----------------------------------------------------------------------
# CostModelConfig
# ----------------------------------------------------------------------
def test_contention_factor_is_one_for_single_thread():
    costs = CostModelConfig()
    assert costs.contention_factor(1) == 1.0


def test_contention_factor_grows_linearly():
    costs = CostModelConfig(contention_alpha=0.5)
    assert costs.contention_factor(3) == pytest.approx(2.0)


def test_compress_cost_scales_with_size():
    costs = CostModelConfig()
    assert costs.compress_cost(2048) == pytest.approx(2 * costs.compress_per_kb)


def test_decompress_cost_has_floor():
    costs = CostModelConfig()
    assert costs.decompress_cost(1) >= 0.1e-6


def test_compression_slower_than_decompression():
    """The paper's explanation for read/write latency asymmetry in NetFS."""
    costs = CostModelConfig()
    assert costs.compress_cost(1024) > costs.decompress_cost(1024)


# ----------------------------------------------------------------------
# ClusterConfig
# ----------------------------------------------------------------------
def test_cluster_config_validate_returns_self():
    config = ClusterConfig()
    assert config.validate() is config


@pytest.mark.parametrize("field, value", [
    ("num_replicas", 0),
    ("mpl", 0),
    ("num_clients", 0),
    ("client_window", 0),
])
def test_cluster_config_rejects_nonpositive(field, value):
    config = ClusterConfig(**{field: value})
    with pytest.raises(ConfigurationError):
        config.validate()


# ----------------------------------------------------------------------
# WorkloadConfig
# ----------------------------------------------------------------------
def test_workload_config_mix_must_sum_to_one():
    with pytest.raises(ConfigurationError):
        WorkloadConfig(mix={"read": 0.5}).validate()


def test_workload_config_rejects_unknown_distribution():
    with pytest.raises(ConfigurationError):
        WorkloadConfig(distribution="pareto").validate()


def test_workload_config_defaults_are_valid():
    assert WorkloadConfig().validate() is not None
