"""Unit tests for the shared simulation-deployment machinery."""

import pytest

from repro.common.config import CostModelConfig, MulticastConfig
from repro.common.errors import ConfigurationError, ProtocolError
from repro.common.rng import SeededRNG
from repro.replication.base import (
    BarrierBoard,
    ClientPool,
    SimStream,
    StreamInbox,
    call_after,
)
from repro.sim import Environment


class _ScriptedGenerator:
    """A tiny deterministic workload generator for client-pool tests."""

    def __init__(self):
        self.count = 0

    def next_invocation(self):
        self.count += 1
        return "read", {"key": self.count}, 48


# ----------------------------------------------------------------------
# call_after
# ----------------------------------------------------------------------
def test_call_after_runs_callback_at_delay(env):
    fired = []
    call_after(env, 2.0, lambda: fired.append(env.now))
    env.run()
    assert fired == [2.0]


# ----------------------------------------------------------------------
# ClientPool
# ----------------------------------------------------------------------
def make_pool(env, num_clients=2, window=3):
    submitted = []
    pool = ClientPool(
        env=env,
        generator=_ScriptedGenerator(),
        submit_fn=submitted.append,
        num_clients=num_clients,
        window=window,
        costs=CostModelConfig(),
    )
    return pool, submitted


def test_client_pool_rejects_bad_sizes(env):
    with pytest.raises(ConfigurationError):
        ClientPool(env, _ScriptedGenerator(), lambda c: None, 0, 1, CostModelConfig())


def test_client_pool_submits_initial_windows(env):
    pool, submitted = make_pool(env, num_clients=2, window=3)
    pool.start()
    assert len(submitted) == 6
    assert pool.outstanding() == 6
    # Every uid is unique.
    assert len({command.uid for command in submitted}) == 6


def test_client_pool_resubmits_on_completion(env):
    pool, submitted = make_pool(env, num_clients=1, window=2)
    pool.start()
    first = submitted[0]
    pool.deliver_response(first.uid, completed_at=0.001)
    assert len(submitted) == 3
    assert pool.outstanding() == 2


def test_client_pool_ignores_duplicate_responses(env):
    pool, submitted = make_pool(env, num_clients=1, window=1)
    pool.start()
    uid = submitted[0].uid
    pool.deliver_response(uid, completed_at=0.001)
    pool.deliver_response(uid, completed_at=0.002)  # from the second replica
    assert len(submitted) == 2


def test_client_pool_latency_recorded_only_inside_window(env):
    pool, submitted = make_pool(env, num_clients=1, window=4)
    pool.throughput.open_window(0.010)
    pool.throughput.close_window(0.020)
    pool.start()
    pool.deliver_response(submitted[0].uid, completed_at=0.005)   # warmup
    pool.deliver_response(submitted[1].uid, completed_at=0.015)   # measured
    pool.deliver_response(submitted[2].uid, completed_at=0.025)   # after close
    assert pool.throughput.completed == 1
    assert len(pool.latency) == 1


def test_client_pool_stops_resubmitting_when_stopped(env):
    pool, submitted = make_pool(env, num_clients=1, window=2)
    pool.start()
    pool.stopped = True
    pool.deliver_response(submitted[0].uid, completed_at=0.001)
    assert len(submitted) == 2
    assert pool.outstanding() == 1


def test_client_pool_latency_includes_network_hops(env):
    costs = CostModelConfig()
    pool, submitted = make_pool(env, num_clients=1, window=1)
    pool.throughput.open_window(0.0)
    pool.throughput.close_window(1.0)
    pool.start()
    pool.deliver_response(submitted[0].uid, completed_at=0.001)
    assert pool.latency.samples[0] == pytest.approx(0.001 + 2 * costs.net_latency)


# ----------------------------------------------------------------------
# StreamInbox
# ----------------------------------------------------------------------
def test_stream_inbox_wakes_waiter_on_offer(env):
    inbox = StreamInbox(env, [1], policy="timestamp")
    log = []

    def consumer(env, inbox):
        while True:
            batches = inbox.drain()
            if batches:
                log.extend(batches)
                return
            yield inbox.wait()

    env.process(consumer(env, inbox))
    call_after(env, 1.0, lambda: inbox.offer(1, 0, 1.0, "batch"))
    env.run()
    assert log == ["batch"]


def test_stream_inbox_skips_do_not_wake_with_items(env):
    inbox = StreamInbox(env, [0, 1], policy="timestamp")
    inbox.offer(1, 0, 5.0, "item")
    assert inbox.drain() == []          # stream 0 horizon unknown
    inbox.offer_skip(0, 0, 6.0)
    assert inbox.drain() == ["item"]
    inbox.heartbeat(0, 8.0)
    assert inbox.drain() == []


# ----------------------------------------------------------------------
# BarrierBoard
# ----------------------------------------------------------------------
def test_barrier_executor_waits_for_all_peers(env):
    board = BarrierBoard(env)
    uid = (1, 1)
    ready = board.expect(uid, peers=(2, 3))
    assert not ready.triggered
    board.signal(uid, 2)
    assert not ready.triggered
    board.signal(uid, 3)
    assert ready.triggered


def test_barrier_signals_before_expect_are_remembered(env):
    board = BarrierBoard(env)
    uid = (1, 2)
    board.signal(uid, 2)
    board.signal(uid, 3)
    ready = board.expect(uid, peers=(2, 3))
    assert ready.triggered


def test_barrier_complete_releases_waiters_and_cleans_up(env):
    board = BarrierBoard(env)
    uid = (1, 3)
    done = board.done_event(uid)
    board.expect(uid, peers=())
    board.complete(uid, when=1.5)
    assert done.triggered
    assert done.value == 1.5
    assert board.pending() == 0


def test_barrier_double_complete_rejected(env):
    board = BarrierBoard(env)
    uid = (1, 4)
    board.expect(uid, peers=())
    board.complete(uid, when=1.0)
    with pytest.raises(ProtocolError):
        board.complete(uid, when=2.0)


def test_barrier_commands_are_independent(env):
    board = BarrierBoard(env)
    ready_a = board.expect(("a", 0), peers=(2,))
    ready_b = board.expect(("b", 0), peers=(2,))
    board.signal(("a", 0), 2)
    assert ready_a.triggered
    assert not ready_b.triggered


# ----------------------------------------------------------------------
# SimStream
# ----------------------------------------------------------------------
class _RecordingSubscriber:
    def __init__(self):
        self.batches = []
        self.skips = []

    def offer(self, stream_id, sequence, timestamp, batch):
        self.batches.append((stream_id, sequence, timestamp, batch))

    def offer_skip(self, stream_id, sequence, timestamp):
        self.skips.append((stream_id, sequence, timestamp))

    def heartbeat(self, stream_id, timestamp):  # pragma: no cover - unused
        pass


def make_stream(env, **overrides):
    config = MulticastConfig(**overrides) if overrides else MulticastConfig()
    return SimStream(
        env=env,
        stream_id=1,
        multicast_config=config,
        costs=CostModelConfig(),
        rng=SeededRNG(3),
    )


def _command(uid, size=48):
    from repro.core.command import Command

    return Command(uid=uid, name="read", args={"key": uid[1]}, size_bytes=size)


def test_stream_orders_and_delivers_batches_in_sequence(env):
    stream = make_stream(env, batch_max_commands=2, batch_timeout=10e-6)
    subscriber = _RecordingSubscriber()
    stream.subscribe(subscriber)
    for index in range(6):
        stream.submit(_command((0, index)))
    env.run(until=0.01)
    sequences = [sequence for _sid, sequence, _ts, _b in subscriber.batches]
    assert sequences == sorted(sequences)
    delivered = [c.uid for _sid, _seq, _ts, batch in subscriber.batches for c in batch.commands]
    assert delivered == [(0, index) for index in range(6)]


def test_stream_flushes_partial_batches_after_timeout(env):
    stream = make_stream(env, batch_max_commands=100, batch_timeout=20e-6)
    subscriber = _RecordingSubscriber()
    stream.subscribe(subscriber)
    stream.submit(_command((0, 0)))
    env.run(until=0.005)
    assert len(subscriber.batches) == 1
    assert len(subscriber.batches[0][3].commands) == 1


def test_stream_emits_skips_when_idle(env):
    stream = make_stream(env, skip_interval=100e-6)
    subscriber = _RecordingSubscriber()
    stream.subscribe(subscriber)
    env.run(until=0.001)
    assert len(subscriber.skips) >= 5
    sequences = [sequence for _sid, sequence, _ts in subscriber.skips]
    assert sequences == sorted(sequences)


def test_stream_paxos_coordinator_decides_every_batch(env):
    stream = make_stream(env, batch_max_commands=4)
    subscriber = _RecordingSubscriber()
    stream.subscribe(subscriber)
    for index in range(12):
        stream.submit(_command((1, index)))
    env.run(until=0.01)
    assert len(stream.coordinator.decided) == len(
        [b for b in subscriber.batches]
    )
    assert stream.commands_submitted == 12


def test_stream_delivery_is_fifo_per_subscriber(env):
    stream = make_stream(env, batch_max_commands=1)
    first, second = _RecordingSubscriber(), _RecordingSubscriber()
    stream.subscribe(first)
    stream.subscribe(second)
    for index in range(20):
        stream.submit(_command((2, index)))
    env.run(until=0.01)
    for subscriber in (first, second):
        times = [ts for _sid, _seq, ts, _b in subscriber.batches]
        assert times == sorted(times)
        assert len(subscriber.batches) == 20
