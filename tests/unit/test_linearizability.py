"""Unit tests for the linearizability checker itself."""

import pytest

from repro.common.errors import LinearizabilityViolation
from repro.runtime.linearizability import (
    HistoryRecorder,
    Operation,
    check_kv_history,
    check_linearizable,
)


def op(client, name, key, result, invoked, returned, value=None):
    args = {"key": key}
    if value is not None:
        args["value"] = value
    return Operation(
        client_id=client, name=name, args=args, result=result,
        invoked_at=invoked, returned_at=returned,
    )


def test_empty_history_is_linearizable():
    assert check_linearizable([])


def test_sequential_read_after_insert():
    history = [
        op(0, "insert", 1, "ok", 0.0, 1.0, value="v"),
        op(0, "read", 1, "v", 2.0, 3.0),
    ]
    assert check_linearizable(history)


def test_read_of_never_written_value_is_rejected():
    history = [
        op(0, "insert", 1, "ok", 0.0, 1.0, value="v"),
        op(0, "read", 1, "other", 2.0, 3.0),
    ]
    with pytest.raises(LinearizabilityViolation):
        check_linearizable(history)


def test_concurrent_operations_may_be_reordered():
    # The read overlaps the insert, so it may see either the old state
    # (missing -> None) or the new value.
    history = [
        op(0, "insert", 1, "ok", 0.0, 2.0, value="v"),
        op(1, "read", 1, None, 0.5, 1.5),
    ]
    assert check_linearizable(history)
    history_new_value = [
        op(0, "insert", 1, "ok", 0.0, 2.0, value="v"),
        op(1, "read", 1, "v", 0.5, 1.5),
    ]
    assert check_linearizable(history_new_value)


def test_real_time_order_is_respected():
    # The insert finished before the read started, so the read MUST see it.
    history = [
        op(0, "insert", 1, "ok", 0.0, 1.0, value="v"),
        op(1, "read", 1, None, 2.0, 3.0),
    ]
    with pytest.raises(LinearizabilityViolation):
        check_linearizable(history)


def test_stale_read_between_two_updates_is_rejected():
    history = [
        op(0, "update", 1, "ok", 0.0, 1.0, value="a"),
        op(0, "update", 1, "ok", 2.0, 3.0, value="b"),
        op(1, "read", 1, "a", 4.0, 5.0),
    ]
    with pytest.raises(LinearizabilityViolation):
        check_linearizable(history, initial_state={1: "z"})


def test_initial_state_is_honoured():
    history = [op(0, "read", 1, "seed", 0.0, 1.0)]
    assert check_linearizable(history, initial_state={1: "seed"})


def test_delete_then_read_missing():
    history = [
        op(0, "delete", 1, "ok", 0.0, 1.0),
        op(1, "read", 1, None, 2.0, 3.0),
    ]
    assert check_linearizable(history, initial_state={1: "x"})


def test_insert_on_existing_key_must_report_exists():
    history = [op(0, "insert", 1, "ok", 0.0, 1.0, value="v")]
    with pytest.raises(LinearizabilityViolation):
        check_linearizable(history, initial_state={1: "already"})


def test_unknown_operation_rejected():
    history = [op(0, "compare-and-swap", 1, "ok", 0.0, 1.0)]
    with pytest.raises(LinearizabilityViolation):
        check_linearizable(history)


def test_history_recorder_collects_operations():
    recorder = HistoryRecorder()
    recorder.record(0, "read", {"key": 1}, "v", 0.0, 1.0)
    recorded = recorder.timed_call(1, "read", {"key": 1}, lambda: "v")
    assert len(recorder.operations) == 2
    assert recorded.returned_at >= recorded.invoked_at


# ----------------------------------------------------------------------
# Hardening: overlapping windows, duplicate uids, pending invocations,
# and the bool/int equality pitfalls (issue 7, satellite 1).
# ----------------------------------------------------------------------

def test_three_way_overlap_on_one_key():
    # Three clients all overlap on key 1: an insert, a delete and a read.
    # One valid order is insert -> read(v) -> delete; the checker must
    # find it among the interleavings.
    history = [
        op(0, "insert", 1, "ok", 0.0, 5.0, value="v"),
        op(1, "delete", 1, "ok", 0.5, 5.5),
        op(2, "read", 1, "v", 1.0, 4.0),
    ]
    assert check_linearizable(history)


def test_overlapping_updates_both_orders_admitted():
    history_sees_a = [
        op(0, "update", 1, "ok", 0.0, 3.0, value="a"),
        op(1, "update", 1, "ok", 0.5, 3.5, value="b"),
        op(2, "read", 1, "a", 4.0, 5.0),
    ]
    history_sees_b = [
        op(0, "update", 1, "ok", 0.0, 3.0, value="a"),
        op(1, "update", 1, "ok", 0.5, 3.5, value="b"),
        op(2, "read", 1, "b", 4.0, 5.0),
    ]
    assert check_linearizable(history_sees_a, initial_state={1: "z"})
    assert check_linearizable(history_sees_b, initial_state={1: "z"})


def test_duplicate_client_invocation_ids_after_replay():
    # After a recovery replay a client may re-record the same logical
    # invocation; the checker treats operations positionally, so two
    # identical records from one client must not confuse it as long as
    # both can be linearized (two inserts: first ok, replay sees exists).
    history = [
        op(3, "insert", 1, "ok", 0.0, 1.0, value="v"),
        op(3, "insert", 1, "err=2", 2.0, 3.0, value="v"),
        op(3, "read", 1, "v", 4.0, 5.0),
    ]
    assert check_linearizable(history)


def test_pending_invocation_may_have_applied():
    # The update's response was lost, but a later read observes its
    # effect: the checker must be able to include the pending op.
    history = [
        op(0, "update", 1, None, 0.0, None, value="new"),
        op(1, "read", 1, "new", 5.0, 6.0),
    ]
    assert check_linearizable(history, initial_state={1: "old"})


def test_pending_invocation_may_have_been_lost():
    # ...or the pending op never took effect, and the read sees old state.
    history = [
        op(0, "update", 1, None, 0.0, None, value="new"),
        op(1, "read", 1, "old", 5.0, 6.0),
    ]
    assert check_linearizable(history, initial_state={1: "old"})


def test_pending_invocation_cannot_explain_the_impossible():
    # A pending *update* on an existing key can only write "new"; a read
    # returning a third value is still a violation.
    history = [
        op(0, "update", 1, None, 0.0, None, value="new"),
        op(1, "read", 1, "phantom", 5.0, 6.0),
    ]
    with pytest.raises(LinearizabilityViolation):
        check_linearizable(history, initial_state={1: "old"})


def test_pending_op_does_not_constrain_real_time_order():
    # The pending insert "started" first but must not force itself before
    # the responded read (its return time is unbounded).
    history = [
        op(0, "insert", 1, None, 0.0, None, value="v"),
        op(1, "read", 1, None, 10.0, 11.0),
    ]
    assert check_linearizable(history)


def test_error_code_one_is_not_a_successful_update():
    # Regression: result 1 (ERR_NOT_FOUND) used to pass the
    # `result in ("ok", True, None, 0)` success test because True == 1.
    history = [op(0, "update", 1, 1, 0.0, 1.0, value="v")]
    with pytest.raises(LinearizabilityViolation):
        check_linearizable(history, initial_state={1: "x"})


def test_success_code_zero_is_not_a_failed_insert():
    # Regression: result 0 (OK) used to pass the failure test on an
    # existing key because False == 0.
    history = [op(0, "insert", 1, 0, 0.0, 1.0, value="v")]
    with pytest.raises(LinearizabilityViolation):
        check_linearizable(history, initial_state={1: "x"})


def test_true_zero_and_none_still_accepted_for_success():
    for result in (0, True, None, "ok"):
        assert check_linearizable(
            [op(0, "update", 1, result, 0.0, 1.0, value="v")],
            initial_state={1: "x"},
        )


def test_record_pending_and_timed_call_on_exception():
    recorder = HistoryRecorder()
    recorder.record_pending(0, "update", {"key": 1}, 0.5)
    assert recorder.operations[-1].pending

    def boom():
        raise TimeoutError("client timed out")

    with pytest.raises(TimeoutError):
        recorder.timed_call(1, "delete", {"key": 2}, boom)
    assert recorder.operations[-1].pending
    assert recorder.operations[-1].name == "delete"


def test_check_kv_history_checks_per_key():
    history = [
        op(0, "insert", 1, "ok", 0.0, 1.0, value="a"),
        op(0, "insert", 2, "ok", 0.0, 1.0, value="b"),
        op(1, "read", 1, "a", 2.0, 3.0),
        op(1, "read", 2, "b", 2.0, 3.0),
    ]
    assert check_kv_history(history)


def test_check_kv_history_names_the_violating_key():
    history = [
        op(0, "insert", 7, "ok", 0.0, 1.0, value="a"),
        op(1, "read", 7, "stale", 2.0, 3.0),
        op(0, "read", 8, None, 0.0, 1.0),
    ]
    with pytest.raises(LinearizabilityViolation, match="key 7"):
        check_kv_history(history)


def test_check_kv_history_scopes_initial_state_per_key():
    history = [
        op(0, "read", 1, "seed", 0.0, 1.0),
        op(0, "read", 2, None, 0.0, 1.0),
    ]
    assert check_kv_history(history, initial_state={1: "seed"})
