"""Unit tests for the linearizability checker itself."""

import pytest

from repro.common.errors import LinearizabilityViolation
from repro.runtime.linearizability import HistoryRecorder, Operation, check_linearizable


def op(client, name, key, result, invoked, returned, value=None):
    args = {"key": key}
    if value is not None:
        args["value"] = value
    return Operation(
        client_id=client, name=name, args=args, result=result,
        invoked_at=invoked, returned_at=returned,
    )


def test_empty_history_is_linearizable():
    assert check_linearizable([])


def test_sequential_read_after_insert():
    history = [
        op(0, "insert", 1, "ok", 0.0, 1.0, value="v"),
        op(0, "read", 1, "v", 2.0, 3.0),
    ]
    assert check_linearizable(history)


def test_read_of_never_written_value_is_rejected():
    history = [
        op(0, "insert", 1, "ok", 0.0, 1.0, value="v"),
        op(0, "read", 1, "other", 2.0, 3.0),
    ]
    with pytest.raises(LinearizabilityViolation):
        check_linearizable(history)


def test_concurrent_operations_may_be_reordered():
    # The read overlaps the insert, so it may see either the old state
    # (missing -> None) or the new value.
    history = [
        op(0, "insert", 1, "ok", 0.0, 2.0, value="v"),
        op(1, "read", 1, None, 0.5, 1.5),
    ]
    assert check_linearizable(history)
    history_new_value = [
        op(0, "insert", 1, "ok", 0.0, 2.0, value="v"),
        op(1, "read", 1, "v", 0.5, 1.5),
    ]
    assert check_linearizable(history_new_value)


def test_real_time_order_is_respected():
    # The insert finished before the read started, so the read MUST see it.
    history = [
        op(0, "insert", 1, "ok", 0.0, 1.0, value="v"),
        op(1, "read", 1, None, 2.0, 3.0),
    ]
    with pytest.raises(LinearizabilityViolation):
        check_linearizable(history)


def test_stale_read_between_two_updates_is_rejected():
    history = [
        op(0, "update", 1, "ok", 0.0, 1.0, value="a"),
        op(0, "update", 1, "ok", 2.0, 3.0, value="b"),
        op(1, "read", 1, "a", 4.0, 5.0),
    ]
    with pytest.raises(LinearizabilityViolation):
        check_linearizable(history, initial_state={1: "z"})


def test_initial_state_is_honoured():
    history = [op(0, "read", 1, "seed", 0.0, 1.0)]
    assert check_linearizable(history, initial_state={1: "seed"})


def test_delete_then_read_missing():
    history = [
        op(0, "delete", 1, "ok", 0.0, 1.0),
        op(1, "read", 1, None, 2.0, 3.0),
    ]
    assert check_linearizable(history, initial_state={1: "x"})


def test_insert_on_existing_key_must_report_exists():
    history = [op(0, "insert", 1, "ok", 0.0, 1.0, value="v")]
    with pytest.raises(LinearizabilityViolation):
        check_linearizable(history, initial_state={1: "already"})


def test_unknown_operation_rejected():
    history = [op(0, "compare-and-swap", 1, "ok", 0.0, 1.0)]
    with pytest.raises(LinearizabilityViolation):
        check_linearizable(history)


def test_history_recorder_collects_operations():
    recorder = HistoryRecorder()
    recorder.record(0, "read", {"key": 1}, "v", 0.0, 1.0)
    recorded = recorder.timed_call(1, "read", {"key": 1}, lambda: "v")
    assert len(recorder.operations) == 2
    assert recorded.returned_at >= recorded.invoked_at
