"""Integration tests for the threaded (real-thread) P-SMR runtime."""

import threading

import pytest

from repro.runtime import ThreadedPSMRCluster, check_linearizable
from repro.runtime.linearizability import HistoryRecorder
from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer
from repro.services.netfs import NETFS_SPEC, NetFSServer


def kv_cluster(mpl=4, replicas=2, initial_keys=32):
    return ThreadedPSMRCluster(
        spec=KVSTORE_SPEC,
        service_factory=lambda: KeyValueStoreServer(initial_keys=initial_keys),
        mpl=mpl,
        num_replicas=replicas,
        barrier_timeout=20.0,
    )


def test_single_client_basic_operations():
    with kv_cluster() as cluster:
        client = cluster.client()
        assert client.invoke("read", key=1).error is None
        assert client.invoke("update", key=1, value=b"new").error is None
        assert client.invoke("read", key=1).value == b"new"
        assert client.invoke("read", key=999).error is not None


def test_dependent_commands_synchronise_across_threads():
    with kv_cluster() as cluster:
        client = cluster.client()
        for key in range(100, 120):
            assert client.invoke("insert", key=key, value=b"x").error is None
        for key in range(100, 110):
            assert client.invoke("delete", key=key).error is None
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]
        assert len(snapshots[0]) == 32 + 10


def test_replicas_converge_under_concurrent_clients():
    with kv_cluster(mpl=4) as cluster:
        errors = []

        def worker(client_index):
            client = cluster.client()
            try:
                for step in range(30):
                    key = (client_index * 31 + step) % 32
                    client.invoke("update", key=key, value=f"{client_index}:{step}".encode())
                    client.invoke("read", key=key)
                # A couple of structural commands to exercise synchronous mode.
                client.invoke("insert", key=1000 + client_index, value=b"s")
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]


def test_concurrent_history_is_linearizable():
    with kv_cluster(mpl=3, initial_keys=4) as cluster:
        recorder = HistoryRecorder()
        barrier = threading.Barrier(3)

        def worker(client_index):
            client = cluster.client()
            barrier.wait()
            for step in range(5):
                key = step % 3
                if (client_index + step) % 2 == 0:
                    recorder.timed_call(
                        client_index, "update", {"key": key, "value": f"c{client_index}s{step}"},
                        lambda k=key, v=f"c{client_index}s{step}": client.invoke(
                            "update", key=k, value=v
                        ).error,
                    )
                else:
                    recorder.timed_call(
                        client_index, "read", {"key": key},
                        lambda k=key: _read_result(client, k),
                    )

        def _read_result(client, key):
            response = client.invoke("read", key=key)
            return response.value if response.error is None else None

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        initial = {key: b"\x00" * 8 for key in range(4)}
        assert check_linearizable(recorder.operations, initial_state=initial)


def test_first_response_wins_and_duplicates_ignored():
    with kv_cluster(mpl=2, replicas=2) as cluster:
        client = cluster.client()
        for _ in range(50):
            assert client.invoke("read", key=0).error is None
        # All waiters were cleaned up (no leak from duplicate replica replies).
        assert not cluster._waiters


def test_mpl_one_cluster_behaves_like_smr():
    with kv_cluster(mpl=1, replicas=2) as cluster:
        client = cluster.client()
        client.invoke("insert", key=500, value=b"x")
        client.invoke("update", key=500, value=b"y")
        assert client.invoke("read", key=500).value == b"y"
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]


def test_no_deadlock_with_many_structural_commands():
    """Stress synchronous mode: every command requires a full barrier."""
    with kv_cluster(mpl=4, initial_keys=0) as cluster:
        clients = [cluster.client() for _ in range(4)]
        threads = []
        errors = []

        def hammer(client, base):
            try:
                for i in range(20):
                    client.invoke("insert", key=base + i, value=b"v", timeout=20)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        for index, client in enumerate(clients):
            thread = threading.Thread(target=hammer, args=(client, index * 1000))
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]
        assert len(snapshots[0]) == 80


def test_threaded_netfs_cluster():
    cluster = ThreadedPSMRCluster(
        spec=NETFS_SPEC, service_factory=NetFSServer, mpl=4, num_replicas=2
    )
    with cluster:
        client = cluster.client()
        client.invoke("mkdir", path="/a")
        client.invoke("mknod", path="/a/f")
        client.invoke("write", path="/a/f", data=b"hello", offset=0)
        assert client.invoke("read", path="/a/f", size=16, offset=0).value == b"hello"
        assert client.invoke("readdir", path="/a").value == [".", "..", "f"]
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]


def test_multicast_message_counter_advances():
    with kv_cluster(mpl=2) as cluster:
        client = cluster.client()
        for key in range(10):
            client.invoke("read", key=key)
        assert cluster.multicast.messages_multicast >= 10
