"""Integration tests for incremental (delta) checkpoints in both runtimes.

Threaded: periodic markers build full+delta chains per ``full_every``; a
crashed replica recovers by replaying on top of its own chain; one whose
log was truncated recovers via a *chain-suffix* transfer (only the deltas
it missed cross the wire); and the ROADMAP scenario — a replica crashing
and recovering while the surviving source is itself inside periodic
checkpoints — completes without hangs, without losing acknowledged writes,
and linearizably.  Simulated: the same policy cuts steady-state checkpoint
bytes and negotiates delta recovery transfers; the ``delta-checkpoint``
experiment meets the >=5x reduction target on the skewed-write workload.
"""

import threading

from repro.common.checkpoint import CheckpointPolicy, FAST_COMPRESSION
from repro.harness.experiments.delta import run_delta_checkpoint
from repro.harness.runner import build_kv_system
from repro.runtime import ThreadedPSMRCluster, check_linearizable
from repro.runtime.linearizability import HistoryRecorder
from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer
from repro.workload import skewed_update_mix


def kv_cluster(mpl=2, replicas=2, initial_keys=16, **kwargs):
    return ThreadedPSMRCluster(
        spec=KVSTORE_SPEC,
        service_factory=lambda: KeyValueStoreServer(initial_keys=initial_keys),
        mpl=mpl,
        num_replicas=replicas,
        barrier_timeout=20.0,
        **kwargs,
    )


#: A policy whose triggers never fire on their own: tests drive
#: ``periodic_checkpoint()`` explicitly for determinism.
def manual_policy(full_every=4, max_replay_lag=None):
    return CheckpointPolicy(
        every_messages=10_000_000,
        max_replay_lag=max_replay_lag,
        full_every=full_every,
    )


# ----------------------------------------------------------------------
# Threaded runtime
# ----------------------------------------------------------------------
def test_threaded_periodic_markers_build_delta_chains():
    with kv_cluster(checkpoint_policy=manual_policy(full_every=3)) as cluster:
        client = cluster.client()
        for round_index in range(5):
            for key in range(8):
                client.invoke("update", key=key, value=f"r{round_index}".encode())
            cluster.wait_for_quiescence()
            cluster.periodic_checkpoint()
        # full_every=3: full, delta, delta, full, delta.
        kinds = [entry["kind"] for entry in cluster.replicas[0].checkpoint_chain]
        assert kinds == ["full", "delta"]
        event_kinds = [
            event["kind"]
            for event in cluster.checkpoint_events
            if event["replica_id"] == 0
        ]
        assert event_kinds == ["full", "delta", "delta", "full", "delta"]
        # Deltas are measured smaller than fulls on this workload.
        fulls = [e for e in cluster.checkpoint_events if e["kind"] == "full"]
        deltas = [e for e in cluster.checkpoint_events if e["kind"] == "delta"]
        assert max(d["wire_bytes"] for d in deltas) < min(f["wire_bytes"] for f in fulls)


def test_threaded_replay_recovery_on_top_of_a_delta_chain():
    """A crashed replica restores base + deltas, then replays the log."""
    with kv_cluster(checkpoint_policy=manual_policy(full_every=4)) as cluster:
        client = cluster.client()
        for key in range(16):
            client.invoke("update", key=key, value=b"base")
        cluster.wait_for_quiescence()
        cluster.periodic_checkpoint()  # full
        for key in range(4):
            client.invoke("update", key=key, value=b"delta1")
        cluster.wait_for_quiescence()
        watermark = cluster.periodic_checkpoint()  # delta
        cluster.crash_replica(1)
        assert [e["kind"] for e in cluster.replicas[1].checkpoint_chain] == [
            "full", "delta",
        ]
        for key in range(8):
            client.invoke("update", key=key, value=b"while-down")
        client.invoke("insert", key=500, value=b"new")
        replica = cluster.recover_replica(1)
        assert replica.checkpoint_watermark == watermark
        assert cluster.recovery_transfers[-1]["mode"] == "replay"
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]


def test_threaded_chain_suffix_transfer_when_log_is_truncated():
    """Acceptance: a replica past its horizon whose cut is still on the
    donor's chain receives only the missed deltas, not a full snapshot."""
    policy = manual_policy(full_every=8, max_replay_lag=5)
    with kv_cluster(checkpoint_policy=policy, initial_keys=64) as cluster:
        client = cluster.client()
        for key in range(32):
            client.invoke("update", key=key, value=b"before")
        cluster.wait_for_quiescence()
        cluster.periodic_checkpoint()  # full base on both replicas
        for key in range(4):
            client.invoke("update", key=key, value=b"d1")
        cluster.wait_for_quiescence()
        cluster.periodic_checkpoint()  # delta 1 — the joiner's last cut
        joiner_watermark = cluster.replicas[1].checkpoint_watermark
        cluster.crash_replica(1)
        # Push far past the 5-message horizon, checkpointing as we go: the
        # donor's chain grows deltas the joiner misses, and truncation
        # eventually passes the joiner's watermark.
        for burst in range(2):
            for key in range(16):
                client.invoke("update", key=key, value=f"b{burst}".encode())
            cluster.wait_for_quiescence()
            cluster.periodic_checkpoint()
        assert cluster.replicas[1].needs_full_transfer
        assert cluster.multicast.min_retained() > joiner_watermark + 1
        replica = cluster.recover_replica(1)
        transfer = cluster.recovery_transfers[-1]
        assert transfer["mode"] == "chain-suffix"
        assert transfer["entries"] == 2  # exactly the two missed deltas
        # The transferred suffix is cheaper than a full snapshot would be.
        full_sizes = [
            e["wire_bytes"] for e in cluster.checkpoint_events if e["kind"] == "full"
        ]
        assert transfer["wire_bytes"] < min(full_sizes)
        assert [e["kind"] for e in replica.checkpoint_chain] == [
            "full", "delta", "delta", "delta",
        ]
        client.invoke("update", key=0, value=b"after")
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]
        counters = [r.service.commands_executed for r in cluster.replicas]
        assert counters[0] == counters[1]


def test_threaded_chain_transfer_respects_the_replay_horizon():
    """A donor chain that merely *contains* the joiner's cut is not enough:
    if the log replay after the donor's tip would exceed ``max_replay_lag``
    (the donor has not checkpointed recently), the chain path must refuse
    and recovery falls back to a fresh full transfer — never the
    O(history) replay the horizon forbids."""
    policy = manual_policy(full_every=8, max_replay_lag=5)
    with kv_cluster(checkpoint_policy=policy) as cluster:
        client = cluster.client()
        for key in range(8):
            client.invoke("update", key=key, value=b"before")
        cluster.wait_for_quiescence()
        cluster.periodic_checkpoint()  # both replicas cut at w; donor tip stays w
        cluster.crash_replica(1)
        for step in range(80):  # far past the 5-message horizon, no checkpoints
            client.invoke("update", key=step % 8, value=b"x")
        cluster.wait_for_quiescence()
        replica = cluster.recover_replica(1)
        assert cluster.recovery_transfers[-1]["mode"] == "full"
        client.invoke("update", key=0, value=b"after")
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]


def test_threaded_recovery_while_source_is_checkpointing():
    """ROADMAP scenario: crash and recover a replica while the surviving
    source is inside periodic checkpoints (a background scheduler keeps
    them coming).  No hang, no lost acknowledged suffix, linearizable."""
    recorder = HistoryRecorder()
    policy = CheckpointPolicy(every_messages=12, full_every=3, max_replay_lag=10_000)
    with kv_cluster(
        initial_keys=8,
        checkpoint_policy=policy,
        checkpoint_poll_interval=0.001,
    ) as cluster:
        stop = threading.Event()

        def churn():
            client = cluster.client()
            step = 0
            while not stop.is_set():
                key = step % 8
                if step % 2 == 0:
                    value = f"churn{step}"
                    recorder.timed_call(
                        0, "update", {"key": key, "value": value},
                        lambda k=key, v=value: client.invoke(
                            "update", key=k, value=v
                        ).error,
                    )
                else:
                    recorder.timed_call(
                        0, "read", {"key": key},
                        lambda k=key: _read_value(client, k),
                    )
                step += 1

        def _read_value(client, key):
            response = client.invoke("read", key=key)
            return response.value if response.error is None else None

        worker = threading.Thread(target=churn)
        worker.start()
        try:
            client = cluster.client()
            for cycle in range(3):
                # Let the scheduler take checkpoints under load, then crash
                # and recover concurrently with whatever marker is in flight.
                for step in range(20):
                    recorder.timed_call(
                        1, "update", {"key": step % 8, "value": f"c{cycle}s{step}"},
                        lambda k=step % 8, v=f"c{cycle}s{step}": client.invoke(
                            "update", key=k, value=v
                        ).error,
                    )
                cluster.crash_replica(1)
                for step in range(10):
                    recorder.timed_call(
                        1, "update", {"key": step % 8, "value": f"down{cycle}s{step}"},
                        lambda k=step % 8, v=f"down{cycle}s{step}": client.invoke(
                            "update", key=k, value=v
                        ).error,
                    )
                cluster.recover_replica(1)
        finally:
            stop.set()
            worker.join(timeout=60)
        assert not worker.is_alive()
        assert cluster.checkpoints_taken > 0
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]
        counters = [r.service.commands_executed for r in cluster.replicas]
        assert counters[0] == counters[1]
    initial = {key: b"\x00" * 8 for key in range(8)}
    assert check_linearizable(recorder.operations, initial_state=initial)


# ----------------------------------------------------------------------
# Simulated runtime
# ----------------------------------------------------------------------
def sim_system(**kwargs):
    return build_kv_system(
        "P-SMR", 4, mix=skewed_update_mix(), execute_state=True,
        initial_keys=2048, key_space=2048, distribution="zipfian",
        zipf_theta=0.9, seed=5, **kwargs,
    )


def test_sim_delta_chains_cut_checkpoint_bytes():
    full_only = sim_system(
        checkpoint_policy=CheckpointPolicy(every_seconds=0.004)
    )
    full_only.run(warmup=0.01, duration=0.05)
    chained = sim_system(
        checkpoint_policy=CheckpointPolicy(every_seconds=0.004, full_every=4)
    )
    chained.run(warmup=0.01, duration=0.05)
    assert full_only.checkpoint_counts["delta"] == 0
    assert chained.checkpoint_counts["delta"] > 0
    mean = lambda s: sum(s.checkpoint_bytes.values()) / max(  # noqa: E731
        1, sum(s.checkpoint_counts.values())
    )
    assert mean(chained) < mean(full_only)
    # Deltas truncate the virtual log just like fulls do.
    assert chained.log_size() < chained.log_appends


def test_sim_compression_model_shrinks_wire_bytes_and_charges_cpu():
    plain = sim_system(
        checkpoint_policy=CheckpointPolicy(every_seconds=0.004)
    )
    plain.run(warmup=0.01, duration=0.04)
    compressed = sim_system(
        checkpoint_policy=CheckpointPolicy(
            every_seconds=0.004, compression=FAST_COMPRESSION
        )
    )
    compressed.run(warmup=0.01, duration=0.04)
    plain_sizes = [
        wire for t in plain.checkpoints for (_k, _raw, wire) in t.sizes.values()
    ]
    compressed_sizes = [
        wire for t in compressed.checkpoints for (_k, _raw, wire) in t.sizes.values()
    ]
    assert plain_sizes and compressed_sizes
    assert max(compressed_sizes) < min(plain_sizes)
    for ticket in compressed.checkpoints:
        for _kind, raw, wire in ticket.sizes.values():
            assert wire == FAST_COMPRESSION.wire_size(raw)


def test_sim_recovery_negotiates_delta_transfer_while_checkpointing():
    """Crash and recover mid-window with periodic delta checkpoints in
    flight: recovery completes (no stall), transfers only the chain suffix
    when the donor's lineage still covers the joiner's cut, and checkpoints
    keep completing afterwards."""
    # A store big enough that a full snapshot dwarfs the per-interval dirty
    # set — otherwise the negotiation (correctly) prefers a full transfer.
    system = build_kv_system(
        "P-SMR", 4, mix=skewed_update_mix(), execute_state=True,
        initial_keys=16384, key_space=16384, distribution="zipfian",
        zipf_theta=0.99, seed=5,
        checkpoint_policy=CheckpointPolicy(every_seconds=0.003, full_every=8),
    )
    system.schedule_crash(1, 0.022)
    system.schedule_recovery(1, 0.028)
    system.run(warmup=0.01, duration=0.06)
    record = system.recoveries[0]
    assert record.done
    assert record.transfer_mode == "delta"
    assert 0 < record.transfer_bytes < sum(
        wire
        for t in system.checkpoints
        for (kind, _raw, wire) in t.sizes.values()
        if kind == "full"
    )
    completed_after = [
        ticket
        for ticket in system.checkpoints
        if ticket.done and ticket.started_at > record.completed_at
    ]
    assert len(completed_after) >= 2


def test_delta_checkpoint_experiment_meets_reduction_target():
    """Acceptance: >=5x steady-state checkpoint-byte reduction on the
    skewed-write workload, with the property of delta recovery visible."""
    result = run_delta_checkpoint(
        warmup=0.01, duration=0.06, seed=1, full_every_values=(1, 16)
    )
    assert result["figure"] == "delta-checkpoint"
    rows = {row["full_every"]: row for row in result["rows"]}
    assert rows[16]["reduction_x"] >= 5.0
    assert rows[16]["deltas"] > rows[16]["fulls"]
    assert rows[16]["transfer"] == "delta"
    assert rows[16]["transfer_kb"] < rows[1]["transfer_kb"]
    assert rows[16]["catch_up_ms"] < rows[1]["catch_up_ms"]
    assert "Delta checkpoints" in result["text"]
