"""Integration tests for crash/recovery in both runtimes.

The threaded tests exercise the real lifecycle — crash a replica's worker
threads under load, recover via checkpoint transfer plus multicast log
replay, and verify convergence and linearizability.  The simulation tests
schedule the same lifecycle at virtual times and verify state convergence
and the recovery experiment's outputs.
"""

import threading
import time

import pytest

from repro.common.errors import RecoveryError
from repro.harness.experiments.recovery import run_recovery
from repro.harness.runner import build_kv_system
from repro.runtime import ThreadedPSMRCluster, check_linearizable
from repro.runtime.linearizability import HistoryRecorder
from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer
from repro.services.netfs import NETFS_SPEC, NetFSServer
from repro.workload import mixed_workload


def kv_cluster(mpl=4, replicas=3, initial_keys=32, **kwargs):
    return ThreadedPSMRCluster(
        spec=KVSTORE_SPEC,
        service_factory=lambda: KeyValueStoreServer(initial_keys=initial_keys),
        mpl=mpl,
        num_replicas=replicas,
        barrier_timeout=20.0,
        **kwargs,
    )


# ----------------------------------------------------------------------
# Threaded runtime: lifecycle basics
# ----------------------------------------------------------------------
def test_crash_and_recover_converges_without_load():
    with kv_cluster(replicas=2) as cluster:
        client = cluster.client()
        for key in range(100, 110):
            assert client.invoke("insert", key=key, value=b"x").error is None
        cluster.crash_replica(1)
        assert [r.replica_id for r in cluster.live_replicas()] == [0]
        # Commands executed while replica 1 is down.
        for key in range(110, 120):
            assert client.invoke("insert", key=key, value=b"y").error is None
        assert client.invoke("delete", key=100).error is None
        cluster.recover_replica(1)
        snapshots = cluster.replica_snapshots()
        assert len(snapshots) == 2
        assert snapshots[0] == snapshots[1]
        assert len(snapshots[0]) == 32 + 19


def test_crashed_replica_threads_terminate():
    with kv_cluster(replicas=2) as cluster:
        client = cluster.client()
        client.invoke("insert", key=1000, value=b"x")
        replica = cluster.crash_replica(1)
        for thread in replica.threads:
            thread.join(timeout=5)
            assert not thread.is_alive()


def test_lifecycle_misuse_raises():
    with kv_cluster(replicas=2) as cluster:
        with pytest.raises(RecoveryError):
            cluster.recover_replica(0)  # not crashed
        cluster.crash_replica(1)
        with pytest.raises(RecoveryError):
            cluster.crash_replica(1)  # already crashed
        with pytest.raises(RecoveryError):
            cluster.crash_replica(0)  # last live replica
        with pytest.raises(RecoveryError):
            cluster.checkpoint(replica_id=1)  # crashed source
        cluster.recover_replica(1)
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]


def test_checkpoint_marker_is_a_consistent_cut():
    with kv_cluster(replicas=2) as cluster:
        client = cluster.client()
        for key in range(200, 220):
            client.invoke("insert", key=key, value=b"v")
        sequence, state = cluster.checkpoint()
        restored = KeyValueStoreServer()
        restored.restore(state)
        cluster.wait_for_quiescence()
        assert restored.snapshot() == cluster.replicas[0].service.snapshot()
        assert sequence >= 0


def test_recovery_replays_only_the_log_suffix():
    """The restored service plus replay must not double-apply commands."""
    with kv_cluster(replicas=2, initial_keys=0) as cluster:
        client = cluster.client()
        for key in range(50):
            assert client.invoke("insert", key=key, value=b"a").error is None
        cluster.crash_replica(1)
        for key in range(50):
            # Re-inserting an existing key fails; deleting it succeeds once.
            assert client.invoke("delete", key=key).error is None
        for key in range(25):
            assert client.invoke("insert", key=key, value=b"b").error is None
        cluster.recover_replica(1)
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]
        assert len(snapshots[0]) == 25
        counters = [r.service.commands_executed for r in cluster.replicas]
        assert counters[0] == counters[1]


def test_netfs_recovery_preserves_descriptor_table():
    cluster = ThreadedPSMRCluster(
        spec=NETFS_SPEC, service_factory=NetFSServer, mpl=4, num_replicas=2
    )
    with cluster:
        client = cluster.client()
        client.invoke("mkdir", path="/a")
        client.invoke("mknod", path="/a/f")
        client.invoke("write", path="/a/f", data=b"hello", offset=0)
        fd = client.invoke("open", path="/a/f").value
        cluster.crash_replica(0)
        client.invoke("write", path="/a/f", data=b" world", offset=5)
        cluster.recover_replica(0)
        # The recovered replica honours a descriptor opened pre-crash.
        assert client.invoke("release", path="/a/f", fd=fd).error is None
        assert client.invoke("read", path="/a/f", size=16, offset=0).value == b"hello world"
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]


# ----------------------------------------------------------------------
# Threaded runtime: recovery under concurrent load
# ----------------------------------------------------------------------
def test_stress_crash_and_recover_under_mixed_load():
    """N concurrent clients, mixed single/multi-group commands, one replica
    crashed and recovered mid-run; every replica converges."""
    with kv_cluster(mpl=4, replicas=3, initial_keys=64) as cluster:
        stop = threading.Event()
        errors = []

        def worker(client_index):
            client = cluster.client()
            step = 0
            try:
                while not stop.is_set():
                    key = (client_index * 17 + step) % 64
                    # Single-group commands (keyed routing).
                    client.invoke("update", key=key, value=f"{client_index}:{step}".encode())
                    client.invoke("read", key=key)
                    # Multi-group commands (serial routing) every few steps.
                    if step % 5 == 0:
                        client.invoke("insert", key=10_000 + client_index * 1000 + step, value=b"s")
                    if step % 11 == 0:
                        client.invoke("delete", key=(client_index * 13 + step) % 64, timeout=20)
                        client.invoke("insert", key=(client_index * 13 + step) % 64, value=b"r", timeout=20)
                    step += 1
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(5)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        cluster.crash_replica(1)
        time.sleep(0.3)
        cluster.recover_replica(1)
        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1] == snapshots[2]
        checksums = {replica.service.checksum() for replica in cluster.replicas}
        assert len(checksums) == 1


def test_history_spanning_crash_and_recovery_is_linearizable():
    """Responses observed across a crash/recovery admit a linearization."""
    num_clients = 3
    with kv_cluster(mpl=3, replicas=2, initial_keys=4) as cluster:
        recorder = HistoryRecorder()
        # Clients plus the main thread rendezvous between phases so the
        # crash and the recovery land between well-defined operation sets.
        phase = threading.Barrier(num_clients + 1)
        errors = []

        def do_ops(client, client_index, phase_index):
            for step in range(3):
                key = (client_index + step) % 3
                if (client_index + step + phase_index) % 2 == 0:
                    value = f"c{client_index}p{phase_index}s{step}"
                    recorder.timed_call(
                        client_index, "update", {"key": key, "value": value},
                        lambda k=key, v=value: client.invoke("update", key=k, value=v).error,
                    )
                else:
                    recorder.timed_call(
                        client_index, "read", {"key": key},
                        lambda k=key: _read_result(client, k),
                    )

        def _read_result(client, key):
            response = client.invoke("read", key=key)
            return response.value if response.error is None else None

        def worker(client_index):
            client = cluster.client()
            try:
                for phase_index in range(3):
                    phase.wait()
                    do_ops(client, client_index, phase_index)
                    phase.wait()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
                phase.abort()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(num_clients)]
        for thread in threads:
            thread.start()
        phase.wait()  # phase 0: both replicas live
        phase.wait()
        cluster.crash_replica(1)
        phase.wait()  # phase 1: replica 1 down
        phase.wait()
        cluster.recover_replica(1)
        phase.wait()  # phase 2: recovered replica serving
        phase.wait()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        initial = {key: b"\x00" * 8 for key in range(4)}
        assert check_linearizable(recorder.operations, initial_state=initial)
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]


# ----------------------------------------------------------------------
# Simulated runtime
# ----------------------------------------------------------------------
def sim_system(**kwargs):
    return build_kv_system(
        "P-SMR", 4, mix=mixed_workload(0.1), execute_state=True,
        initial_keys=64, key_space=256, seed=5, **kwargs,
    )


def test_sim_crash_and_recover_converges():
    system = sim_system()
    system.schedule_crash(1, 0.03)
    system.schedule_recovery(1, 0.06)
    result = system.run(warmup=0.01, duration=0.1)
    assert result.completed > 0
    record = system.recoveries[0]
    assert record.done
    assert record.duration() > 0
    assert system.live_replica_ids() == [0, 1]
    assert system.quiesce() == 0
    state0 = system.replica_state(0)
    state1 = system.replica_state(1)
    assert state0.snapshot() == state1.snapshot()
    assert state0.commands_executed == state1.commands_executed


def test_sim_crashed_replica_does_not_execute():
    system = sim_system()
    system.schedule_crash(1, 0.02)
    result = system.run(warmup=0.01, duration=0.05)
    # Clients are still served by the surviving replica.
    assert result.completed > 0
    assert system.live_replica_ids() == [0]
    executed_down = sum(w.executed for w in system.replicas[1]["workers"])
    executed_live = sum(w.executed for w in system.replicas[0]["workers"])
    assert executed_live > executed_down


def test_sim_recovery_with_three_replicas_keeps_all_executors_alive():
    """Regression: with >= 2 live replicas, both executors may reach the
    recovery marker within one serialisation window; only one may publish
    the checkpoint, and neither worker may die doing so."""
    from repro.common.config import ClusterConfig
    from repro.replication import KVCostProfile, PSMRSystem
    from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer
    from repro.workload import KVWorkloadGenerator

    config = ClusterConfig(
        num_replicas=3, mpl=4, num_clients=24, client_window=20, seed=7
    )
    generator = KVWorkloadGenerator(
        mix=mixed_workload(0.1), key_space=256, distribution="uniform", seed=11
    )
    system = PSMRSystem(
        config,
        generator,
        KVCostProfile(config.costs),
        spec=KVSTORE_SPEC,
        execute_state=True,
        state_factory=lambda: KeyValueStoreServer(initial_keys=64),
    )
    system.schedule_crash(2, 0.02)
    system.schedule_recovery(2, 0.04)
    system.run(warmup=0.01, duration=0.08)
    assert system.recoveries[0].done
    assert system.live_replica_ids() == [0, 1, 2]
    assert system.quiesce() == 0
    snapshots = [system.replica_state(i).snapshot() for i in range(3)]
    assert snapshots[0] == snapshots[1] == snapshots[2]
    counters = [system.replica_state(i).commands_executed for i in range(3)]
    assert len(set(counters)) == 1
    # Every replica's workers kept executing after the marker (no silently
    # dead executor processes).
    for replica in system.replicas:
        assert sum(worker.executed for worker in replica["workers"]) > 0


def test_sim_lifecycle_misuse_raises():
    system = sim_system()
    with pytest.raises(RecoveryError):
        system.recover_replica(0)
    system.crash_replica(1)
    with pytest.raises(RecoveryError):
        system.crash_replica(1)
    with pytest.raises(RecoveryError):
        system.crash_replica(0)


def test_recovery_experiment_produces_dip_and_catchup_table():
    result = run_recovery(warmup=0.01, duration=0.08, seed=2, buckets=8)
    assert result["figure"] == "recovery"
    assert len(result["rows"]) == 8
    phases = [row["phase"] for row in result["rows"]]
    assert "before" in phases and "down" in phases and "after" in phases
    summary = result["summary"]
    assert summary["catch_up_ms"] is not None and summary["catch_up_ms"] > 0
    assert summary["before_kcps"] > 0 and summary["down_kcps"] > 0
    assert "throughput dip" in result["text"] or "catch-up" in result["text"]


# ----------------------------------------------------------------------
# Checkpoint/recovery bugfix regressions (threaded runtime)
# ----------------------------------------------------------------------
def test_checkpoint_honours_explicit_zero_timeout():
    """Regression: ``timeout=0`` used to fall through ``timeout or default``
    into the full barrier timeout (20 s here) instead of timing out at once."""
    cluster = kv_cluster(replicas=2)  # never started: no marker ever executes
    started = time.monotonic()
    with pytest.raises(TimeoutError):
        cluster.checkpoint(timeout=0)
    with pytest.raises(TimeoutError):
        cluster.checkpoint(timeout=0.05)
    assert time.monotonic() - started < 5.0


class _GatedKVServer(KeyValueStoreServer):
    """A replica service that parks its worker inside ``apply`` on one key."""

    GATE_KEY = 3

    def __init__(self, gate, **kwargs):
        super().__init__(**kwargs)
        self._gate = gate

    def apply(self, command):
        if command.name == "update" and command.args.get("key") == self.GATE_KEY:
            self._gate.wait(10)
        return super().apply(command)


def test_checkpoint_source_crashing_mid_marker_raises_recovery_error():
    """Regression: a source that crashes after the marker is multicast but
    before delivering its checkpoint used to hang the caller for the whole
    barrier timeout and then raise a bare TimeoutError."""
    gate = threading.Event()
    built = []

    def factory():
        index = len(built)
        built.append(index)
        if index == 1:  # replica 1 is the gated one
            return _GatedKVServer(gate, initial_keys=8)
        return KeyValueStoreServer(initial_keys=8)

    cluster = ThreadedPSMRCluster(
        spec=KVSTORE_SPEC, service_factory=factory, mpl=2, num_replicas=2,
        barrier_timeout=30.0,
    )
    with cluster:
        client = cluster.client()
        # Replica 0 executes and responds; replica 1's worker parks in apply,
        # so the marker multicast next can never be delivered by replica 1.
        client.invoke("update", key=_GatedKVServer.GATE_KEY, value=b"block")
        outcome = {}

        def checkpoint_crashed_source():
            try:
                cluster.checkpoint(replica_id=1, timeout=30)
            except Exception as exc:  # noqa: BLE001 - the exception IS the assertion
                outcome["exc"] = exc

        waiter = threading.Thread(target=checkpoint_crashed_source)
        waiter.start()
        time.sleep(0.2)
        # Unblock the parked worker shortly after the crash so its thread
        # can observe the crash flag and terminate.
        threading.Timer(0.2, gate.set).start()
        crashed_at = time.monotonic()
        cluster.crash_replica(1)
        waiter.join(timeout=10)
        assert not waiter.is_alive()
        # Prompt RecoveryError naming the crashed source, not a 30 s hang.
        assert isinstance(outcome["exc"], RecoveryError)
        assert "1" in str(outcome["exc"])
        assert time.monotonic() - crashed_at < 10.0
        cluster.recover_replica(1)


def test_recover_replica_validates_explicit_source_up_front():
    with kv_cluster(replicas=3) as cluster:
        client = cluster.client()
        client.invoke("insert", key=500, value=b"x")
        cluster.crash_replica(1)
        cluster.crash_replica(2)
        started = time.monotonic()
        with pytest.raises(RecoveryError):
            cluster.recover_replica(1, source_replica_id=1)  # itself
        with pytest.raises(RecoveryError):
            cluster.recover_replica(1, source_replica_id=2)  # crashed source
        with pytest.raises(RecoveryError):
            cluster.recover_replicas([1, 2], source_replica_id=2)  # being recovered
        assert time.monotonic() - started < 5.0  # no marker was ever multicast
        cluster.recover_replicas([1, 2])
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1] == snapshots[2]


# ----------------------------------------------------------------------
# Waiter bookkeeping regressions (threaded client plumbing)
# ----------------------------------------------------------------------
def test_invoke_timeout_does_not_leak_waiters():
    # The cluster is never started: no replica will ever respond.
    cluster = kv_cluster(replicas=2)
    client = cluster.client()
    for _ in range(3):
        with pytest.raises(TimeoutError):
            client.invoke("read", key=0, timeout=0.05)
    assert cluster._waiters == {}
    assert cluster._responses == {}


def test_response_without_waiter_is_dropped():
    cluster = kv_cluster(replicas=2)
    from repro.core.command import Response

    cluster._respond((99, 0), Response(uid=(99, 0), value=b"late"))
    assert cluster._responses == {}
