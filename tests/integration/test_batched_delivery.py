"""Batched delivery and execution in the threaded runtime (ISSUE 6 tentpole).

Workers drain a *batch* of delivered commands per wakeup and hand their
responses back in one batch too.  These tests pin the semantics that must
survive the optimisation:

* batched and unbatched (``delivery_batch_size=1``, the legacy loop)
  executions are indistinguishable — same states, same responses;
* checkpoint markers cut exactly at batch boundaries
  (``marker_boundary_violations`` stays zero) and recovery from those
  checkpoints still converges;
* pipelined clients (``invoke_async``) actually fill batches, and the
  resulting concurrent histories stay linearizable;
* the binary wire codec round-trips every command on the multicast path
  without changing any observable behaviour.
"""

import threading

import pytest

from repro.common.checkpoint import CheckpointPolicy
from repro.runtime import ThreadedPSMRCluster, check_linearizable
from repro.runtime.linearizability import HistoryRecorder
from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer


def kv_cluster(mpl=4, replicas=2, initial_keys=32, **kwargs):
    return ThreadedPSMRCluster(
        spec=KVSTORE_SPEC,
        service_factory=lambda: KeyValueStoreServer(initial_keys=initial_keys),
        mpl=mpl,
        num_replicas=replicas,
        barrier_timeout=20.0,
        **kwargs,
    )


def run_mixed_workload(cluster, steps=60):
    """A deterministic single-client workload touching every command type."""
    client = cluster.client()
    results = []
    for step in range(steps):
        key = step % 16
        if step % 10 == 7:
            results.append(("insert", client.invoke("insert", key=1000 + step, value=b"s").error))
        elif step % 10 == 9:
            results.append(("delete", client.invoke("delete", key=1000 + step - 2).error))
        elif step % 2 == 0:
            results.append(("update", client.invoke("update", key=key, value=bytes([step % 251])).error))
        else:
            results.append(("read", client.invoke("read", key=key).value))
    return results


class TestBatchedSemantics:
    def test_batched_matches_unbatched(self):
        outcomes = {}
        for batch_size in (1, 64):
            with kv_cluster(delivery_batch_size=batch_size) as cluster:
                results = run_mixed_workload(cluster)
                snapshots = cluster.replica_snapshots()
                assert snapshots[0] == snapshots[1]
                outcomes[batch_size] = (results, snapshots[0])
        assert outcomes[1] == outcomes[64]

    def test_pipelined_clients_fill_batches(self):
        with kv_cluster(mpl=2, delivery_batch_size=64) as cluster:
            client = cluster.client()
            window = [
                client.invoke_async("update", key=i % 16, value=b"p")
                for i in range(200)
            ]
            for pending in window:
                assert pending.result(timeout=20.0).error is None
            cluster.wait_for_quiescence()
            stats = cluster.delivery_batch_stats()
            assert stats["messages_delivered"] > 0
            # Pipelining must produce real amortisation, not 1-per-wakeup.
            assert stats["avg_batch"] > 1.5

    def test_pipelined_history_is_linearizable(self):
        with kv_cluster(mpl=3, initial_keys=4, delivery_batch_size=32) as cluster:
            recorder = HistoryRecorder()
            barrier = threading.Barrier(3)

            def worker(client_index):
                client = cluster.client()
                barrier.wait()
                for step in range(5):
                    key = step % 3
                    if (client_index + step) % 2 == 0:
                        recorder.timed_call(
                            client_index, "update",
                            {"key": key, "value": bytes([client_index])},
                            lambda k=key, c=client_index: client.invoke(
                                "update", key=k, value=bytes([c])
                            ).error,
                        )
                    else:
                        recorder.timed_call(
                            client_index, "read", {"key": key},
                            lambda k=key: client.invoke("read", key=k).value,
                        )

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            initial = {key: b"\x00" * 8 for key in range(4)}
            assert check_linearizable(recorder.operations, initial_state=initial)


class TestMarkersAtBatchBoundaries:
    def test_markers_cut_batches_cleanly_under_load(self, tmp_path):
        policy = CheckpointPolicy(every_messages=40, full_every=3, compact_after=4)
        with kv_cluster(
            mpl=2,
            delivery_batch_size=64,
            checkpoint_policy=policy,
            checkpoint_poll_interval=0.001,
            store_dir=str(tmp_path),
        ) as cluster:
            client = cluster.client()
            window = [
                client.invoke_async("update", key=i % 16, value=bytes([i % 251]))
                for i in range(400)
            ]
            for pending in window:
                assert pending.result(timeout=20.0).error is None
            cluster.wait_for_quiescence()
            assert cluster.checkpoints_taken >= 1
            assert cluster.marker_boundary_violations == 0
            snapshots = cluster.replica_snapshots()
            assert snapshots[0] == snapshots[1]

    def test_recovery_replays_into_batched_workers(self):
        policy = CheckpointPolicy(every_messages=30)
        with kv_cluster(
            mpl=2, delivery_batch_size=32, checkpoint_policy=policy,
            checkpoint_poll_interval=0.001,
        ) as cluster:
            client = cluster.client()
            for i in range(60):
                client.invoke("update", key=i % 16, value=b"before")
            cluster.crash_replica(1)
            for i in range(40):
                client.invoke("update", key=i % 16, value=b"after")
            cluster.recover_replica(1)
            snapshots = cluster.replica_snapshots()
            assert snapshots[0] == snapshots[1]
            assert cluster.marker_boundary_violations == 0

    def test_explicit_checkpoint_during_batched_load(self):
        with kv_cluster(mpl=2, delivery_batch_size=64) as cluster:
            client = cluster.client()
            window = [
                client.invoke_async("update", key=i % 8, value=b"c")
                for i in range(120)
            ]
            sequence, state = cluster.checkpoint()
            assert state is not None
            for pending in window:
                assert pending.result(timeout=20.0).error is None
            # The snapshot reflects a consistent cut at the marker: its
            # command count never exceeds what was multicast before it.
            assert 0 <= state["commands_executed"] <= 120
            assert cluster.marker_boundary_violations == 0


class TestWireCodec:
    @pytest.mark.parametrize("wire_codec", ["binary", "pickle"])
    def test_wire_codec_round_trips_every_command(self, wire_codec):
        with kv_cluster(delivery_batch_size=32, wire_codec=wire_codec) as cluster:
            results = run_mixed_workload(cluster)
            snapshots = cluster.replica_snapshots()
            assert snapshots[0] == snapshots[1]
            assert cluster.multicast.wire_bytes > 0
        with kv_cluster(delivery_batch_size=32) as reference:
            assert run_mixed_workload(reference) == results

    def test_wire_codec_history_is_linearizable(self):
        with kv_cluster(
            mpl=2, initial_keys=4, delivery_batch_size=16, wire_codec="binary"
        ) as cluster:
            recorder = HistoryRecorder()
            client = cluster.client()
            for step in range(10):
                key = step % 3
                if step % 2 == 0:
                    recorder.timed_call(
                        0, "update", {"key": key, "value": b"w"},
                        lambda k=key: client.invoke("update", key=k, value=b"w").error,
                    )
                else:
                    recorder.timed_call(
                        0, "read", {"key": key},
                        lambda k=key: client.invoke("read", key=k).value,
                    )
            initial = {key: b"\x00" * 8 for key in range(4)}
            assert check_linearizable(recorder.operations, initial_state=initial)
