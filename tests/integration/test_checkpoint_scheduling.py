"""Integration tests for periodic checkpointing and log truncation.

Threaded side: the background scheduler keeps ``multicast.log_size()``
bounded under sustained load; a crashed replica inside its replayable
horizon recovers by replaying its own checkpoint's log suffix; one past the
horizon is marked for full state transfer and recovers that way with
linearizability preserved; simultaneous multi-replica failures heal from a
single shared checkpoint.  Simulated side: the same policy runs at virtual
times, with truncation free and the periodic-checkpoint overhead visible in
throughput.
"""

import threading
import time

from repro.common.checkpoint import CheckpointPolicy
from repro.harness.experiments.recovery import run_checkpoint_scaling
from repro.harness.runner import build_kv_system
from repro.runtime import ThreadedPSMRCluster, check_linearizable
from repro.runtime.linearizability import HistoryRecorder
from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer
from repro.workload import mixed_workload


def kv_cluster(mpl=2, replicas=2, initial_keys=16, **kwargs):
    return ThreadedPSMRCluster(
        spec=KVSTORE_SPEC,
        service_factory=lambda: KeyValueStoreServer(initial_keys=initial_keys),
        mpl=mpl,
        num_replicas=replicas,
        barrier_timeout=20.0,
        **kwargs,
    )


#: A policy whose triggers never fire on their own: tests drive
#: ``periodic_checkpoint()`` explicitly for determinism.
def manual_policy(max_replay_lag=None):
    return CheckpointPolicy(every_messages=10_000_000, max_replay_lag=max_replay_lag)


# ----------------------------------------------------------------------
# Threaded runtime: the background scheduler bounds the log
# ----------------------------------------------------------------------
def test_scheduler_keeps_log_bounded_under_sustained_load():
    policy = CheckpointPolicy(every_messages=40)
    with kv_cluster(checkpoint_policy=policy, checkpoint_poll_interval=0.002) as cluster:
        client = cluster.client()
        samples = []
        total = 800
        for step in range(total):
            key = step % 16
            client.invoke("update", key=key, value=f"v{step}".encode())
            if step % 50 == 49:
                samples.append(cluster.multicast.log_size())
        # Bounded: the log never approaches the number of messages sent.
        assert max(samples) < total // 2
        assert cluster.checkpoints_taken > 0
        assert cluster.truncations > 0
        # After one final explicit checkpoint the log shrinks to the tail
        # ordered after the last marker.
        cluster.wait_for_quiescence()
        cluster.periodic_checkpoint()
        assert cluster.multicast.log_size() <= 8
        assert cluster.multicast.min_retained() > 0


def test_recovery_inside_horizon_replays_own_checkpoint():
    """A crashed replica within its replayable horizon recovers from its own
    last local checkpoint plus log-suffix replay — no peer state transfer."""
    with kv_cluster(checkpoint_policy=manual_policy(max_replay_lag=10_000)) as cluster:
        client = cluster.client()
        for key in range(16):
            client.invoke("update", key=key, value=b"before")
        cluster.wait_for_quiescence()
        watermark = cluster.periodic_checkpoint()
        assert watermark is not None and watermark >= 0
        cluster.crash_replica(1)
        for key in range(16):
            client.invoke("update", key=key, value=b"while-down")
        client.invoke("insert", key=999, value=b"new")
        replica = cluster.recover_replica(1)
        assert not replica.needs_full_transfer
        # No marker was ordered after the periodic one, so replay leaves the
        # watermark exactly where the crashed replica's checkpoint put it.
        assert replica.checkpoint_watermark == watermark
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]
        counters = [r.service.commands_executed for r in cluster.replicas]
        assert counters[0] == counters[1]


def test_recovery_past_horizon_falls_back_to_full_state_transfer():
    """Acceptance: a replica crashed past its replayable horizon is marked
    for full state transfer, recovers that way, and the history observed
    across the whole lifecycle stays linearizable."""
    recorder = HistoryRecorder()
    with kv_cluster(checkpoint_policy=manual_policy(max_replay_lag=30)) as cluster:
        clients = [cluster.client() for _ in range(2)]

        def do_phase(phase_index):
            threads = []
            for client_index, client in enumerate(clients):
                def ops(client=client, client_index=client_index):
                    for step in range(3):
                        key = (client_index + step) % 4
                        if (client_index + step + phase_index) % 2 == 0:
                            value = f"c{client_index}p{phase_index}s{step}"
                            recorder.timed_call(
                                client_index, "update", {"key": key, "value": value},
                                lambda k=key, v=value: client.invoke(
                                    "update", key=k, value=v
                                ).error,
                            )
                        else:
                            recorder.timed_call(
                                client_index, "read", {"key": key},
                                lambda k=key: _read_value(client, k),
                            )
                thread = threading.Thread(target=ops)
                threads.append(thread)
                thread.start()
            for thread in threads:
                thread.join(timeout=60)

        def _read_value(client, key):
            response = client.invoke("read", key=key)
            return response.value if response.error is None else None

        do_phase(0)
        cluster.wait_for_quiescence()
        cluster.periodic_checkpoint()
        cluster.crash_replica(1)
        # Push the crashed replica far past its 30-message horizon.
        filler = cluster.client()
        for step in range(80):
            filler.invoke("update", key=4 + step % 8, value=b"x")
        do_phase(1)
        cluster.wait_for_quiescence()
        cluster.periodic_checkpoint()
        assert cluster.replicas[1].needs_full_transfer
        # The log really was truncated past the crashed replica's watermark.
        assert cluster.multicast.min_retained() > cluster.replicas[1].checkpoint_watermark + 1
        replica = cluster.recover_replica(1)
        assert not replica.needs_full_transfer
        do_phase(2)
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]
    initial = {key: b"\x00" * 8 for key in range(16)}
    assert check_linearizable(recorder.operations, initial_state=initial)


def test_simultaneous_two_replica_crash_recovers_from_shared_checkpoint():
    with kv_cluster(replicas=3, initial_keys=8) as cluster:
        client = cluster.client()
        for key in range(8):
            client.invoke("update", key=key, value=b"before")
        cluster.crash_replicas([1, 2])
        assert [r.replica_id for r in cluster.live_replicas()] == [0]
        for key in range(8):
            client.invoke("update", key=key, value=b"while-down")
        client.invoke("insert", key=100, value=b"new")
        recovered = cluster.recover_replicas([1, 2])
        assert [r.replica_id for r in recovered] == [1, 2]
        # One shared checkpoint: both recovered replicas restored the same
        # marker cut (identical watermarks) and the states are independent.
        assert recovered[0].checkpoint_watermark == recovered[1].checkpoint_watermark
        client.invoke("update", key=0, value=b"after")
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1] == snapshots[2]
        counters = [r.service.commands_executed for r in cluster.replicas]
        assert len(set(counters)) == 1


# ----------------------------------------------------------------------
# Simulated runtime: the mirrored policy at virtual times
# ----------------------------------------------------------------------
def sim_system(**kwargs):
    return build_kv_system(
        "P-SMR", 4, mix=mixed_workload(0.1), execute_state=True,
        initial_keys=64, key_space=256, seed=5, **kwargs,
    )


def test_sim_periodic_checkpoints_truncate_log_and_cost_throughput():
    baseline = sim_system()
    baseline_result = baseline.run(warmup=0.01, duration=0.06)
    system = sim_system(
        checkpoint_policy=CheckpointPolicy(every_seconds=0.004)
    )
    result = system.run(warmup=0.01, duration=0.06)
    done = [ticket for ticket in system.checkpoints if ticket.done]
    assert len(done) >= 3
    # Truncation is zero-cost bookkeeping, so the log shrinks...
    assert system.log_size() < system.log_appends
    assert system.log_size() == system.log_appends - max(t.append_count for t in done)
    # ...but the checkpoints themselves are not free: every replica's
    # executor pays the serialisation time, which costs client throughput.
    assert result.completed <= baseline_result.completed
    assert baseline.log_size() == baseline.log_appends  # no policy, no truncation


def test_sim_message_count_trigger_and_crash_completion():
    system = sim_system(
        checkpoint_policy=CheckpointPolicy(every_messages=2000)
    )
    system.schedule_crash(1, 0.02)
    result = system.run(warmup=0.01, duration=0.05)
    assert result.completed > 0
    assert len(system.checkpoints) >= 1
    # Markers waiting on the crashed replica complete against the shrunken
    # live set instead of sticking forever.
    assert any(ticket.done for ticket in system.checkpoints)
    assert system.log_size() < system.log_appends


def test_sim_checkpoints_continue_after_a_crash_recovery_cycle():
    """Regression: a marker in flight across a crash/recovery must not get
    stuck waiting on the recovered replica (which skipped it while down) —
    that would silently stall every later checkpoint and unbound the log."""
    system = sim_system(checkpoint_policy=CheckpointPolicy(every_seconds=0.003))
    system.schedule_crash(1, 0.015)
    system.schedule_recovery(1, 0.025)
    system.run(warmup=0.01, duration=0.08)
    record = system.recoveries[0]
    assert record.done
    completed_after_recovery = [
        ticket
        for ticket in system.checkpoints
        if ticket.done and ticket.started_at > record.completed_at
    ]
    assert len(completed_after_recovery) >= 2


def test_checkpoint_scaling_experiment_reports_latency_vs_state_size():
    result = run_checkpoint_scaling(
        warmup=0.008, duration=0.04, seed=3, state_sizes=(32, 512),
        checkpoint_every_seconds=0.005,
    )
    assert result["figure"] == "checkpoint-scaling"
    rows = result["rows"]
    assert len(rows) == 2
    for row in rows:
        assert row["catch_up_ms"] is not None and row["catch_up_ms"] > 0
        assert row["checkpoints"] > 0
        # The policy keeps the steady-state log well below everything ordered.
        assert row["steady_log_size"] < row["ordered_total"]
    assert rows[1]["checkpoint_kb"] > rows[0]["checkpoint_kb"]
    assert "Checkpoint scaling" in result["text"]
