"""Integration tests: short end-to-end runs of every simulated technique."""

import pytest

from repro.harness import build_kv_system, run_kv_technique, run_netfs_technique
from repro.workload import DEPENDENT_ONLY_MIX, READ_ONLY_MIX, mixed_workload

TECHNIQUES = ("SMR", "P-SMR", "sP-SMR", "no-rep", "BDB")

#: Short windows keep the whole module under a minute.
FAST = dict(warmup=0.005, duration=0.02)


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_read_only_run_completes(technique):
    result = run_kv_technique(
        technique, 2, mix=READ_ONLY_MIX, num_clients=8, **FAST
    )
    assert result.completed > 0
    assert result.throughput_kcps > 0
    assert result.avg_latency_ms > 0
    assert result.technique == technique


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_dependent_run_completes(technique):
    result = run_kv_technique(
        technique, 2, mix=DEPENDENT_ONLY_MIX, num_clients=6, **FAST
    )
    assert result.completed > 0
    assert result.throughput_kcps > 0


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_mixed_run_completes(technique):
    result = run_kv_technique(
        technique, 4, mix=mixed_workload(0.05), num_clients=8, **FAST
    )
    assert result.completed > 0


def test_cpu_percent_bounded_by_thread_count():
    result = run_kv_technique("P-SMR", 4, mix=READ_ONLY_MIX, num_clients=20, **FAST)
    # One replica cannot use more CPU than its worker threads can provide.
    assert result.cpu_percent <= 4 * 100.0 + 1.0


def test_latency_cdf_is_monotonic():
    result = run_kv_technique("P-SMR", 2, mix=READ_ONLY_MIX, num_clients=8, **FAST)
    fractions = [fraction for _lat, fraction in result.latency_cdf]
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)


def test_zipfian_workload_runs():
    result = run_kv_technique(
        "P-SMR", 4, mix={"read": 0.5, "update": 0.5}, distribution="zipfian",
        num_clients=12, **FAST
    )
    assert result.completed > 0


@pytest.mark.parametrize("technique", ("SMR", "sP-SMR", "P-SMR"))
@pytest.mark.parametrize("operation", ("read", "write"))
def test_netfs_runs(technique, operation):
    result = run_netfs_technique(
        technique, 2, operation=operation, num_clients=6, **FAST
    )
    assert result.completed > 0
    assert result.throughput_kcps > 0


# ----------------------------------------------------------------------
# State-machine execution inside the simulator: replicas must converge.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("technique", ("SMR", "P-SMR", "sP-SMR"))
def test_replicated_state_converges(technique):
    system = build_kv_system(
        technique, 3, mix=mixed_workload(0.2), key_space=200,
        num_clients=4, execute_state=True, initial_keys=200,
    )
    system.run(warmup=0.002, duration=0.01)
    # Stop the load and let both replicas finish the commands in flight
    # before comparing their states.
    assert system.quiesce() == 0
    snapshots = [
        system.replica_state(replica_id).snapshot()
        for replica_id in range(system.config.num_replicas)
    ]
    assert len(snapshots) == 2
    assert snapshots[0] == snapshots[1]
    assert len(snapshots[0]) > 0


def test_single_server_techniques_apply_state():
    for technique in ("no-rep", "BDB"):
        system = build_kv_system(
            technique, 2, mix=mixed_workload(0.1), key_space=100,
            num_clients=4, execute_state=True, initial_keys=100,
        )
        system.run(warmup=0.002, duration=0.01)
        state = system.replica_state(0)
        assert state.commands_executed > 0


def test_p_smr_scales_beyond_smr_with_independent_commands():
    """The headline claim, checked at reduced scale."""
    smr = run_kv_technique("SMR", 1, mix=READ_ONLY_MIX, num_clients=30, **FAST)
    psmr = run_kv_technique("P-SMR", 8, mix=READ_ONLY_MIX, num_clients=80, **FAST)
    assert psmr.throughput_kcps > 2.0 * smr.throughput_kcps


def test_smr_beats_p_smr_with_dependent_commands():
    smr = run_kv_technique("SMR", 1, mix=DEPENDENT_ONLY_MIX, num_clients=20, **FAST)
    psmr = run_kv_technique("P-SMR", 1, mix=DEPENDENT_ONLY_MIX, num_clients=20, **FAST)
    assert smr.throughput_kcps > psmr.throughput_kcps


def test_merge_policy_round_robin_still_completes():
    result = run_kv_technique(
        "P-SMR", 2, mix=READ_ONLY_MIX, merge_policy="round_robin",
        num_clients=8, **FAST
    )
    assert result.completed > 0


def test_coarse_cg_reduces_update_throughput():
    fine = run_kv_technique(
        "P-SMR", 4, mix={"read": 0.5, "update": 0.5}, num_clients=16, **FAST
    )
    coarse = run_kv_technique(
        "P-SMR", 4, mix={"read": 0.5, "update": 0.5}, coarse_cg=True,
        num_clients=16, **FAST
    )
    assert coarse.throughput_kcps < fine.throughput_kcps
