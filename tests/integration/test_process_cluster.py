"""Integration tests for the process-per-replica runtime (ISSUE 8).

Every replica here is a real OS process reached over TCP: crashes are
literal ``SIGKILL``s, restarts re-exec the replica binary against its
durable store, and injected faults mangle actual socket frames.  The
tests use fixed seeds so any failure reproduces with one command.
"""

import os
import random
import threading

import pytest

from repro.common.checkpoint import CheckpointPolicy
from repro.common.faults import FaultPlane
from repro.harness.nemesis import assert_episode_ok, run_proc_nemesis_episode
from repro.runtime import (
    ProcessPSMRCluster,
    ThreadedPSMRCluster,
    check_linearizable,
)
from repro.runtime.linearizability import HistoryRecorder
from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer


def proc_cluster(mpl=2, replicas=2, initial_keys=16, **kwargs):
    return ProcessPSMRCluster(
        service="kvstore",
        service_args={"initial_keys": initial_keys},
        mpl=mpl,
        num_replicas=replicas,
        barrier_timeout=20.0,
        **kwargs,
    )


def test_basic_operations_and_convergence():
    with proc_cluster() as cluster:
        client = cluster.client()
        assert client.invoke("read", key=1).error is None
        assert client.invoke("update", key=1, value=b"new").error is None
        assert client.invoke("read", key=1).value == b"new"
        assert client.invoke("read", key=999).error is not None
        assert client.invoke("insert", key=500, value=b"s").error is None
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]
        assert cluster.marker_boundary_violations == 0


def test_replica_processes_are_real_and_distinct():
    with proc_cluster(replicas=2) as cluster:
        pids = {replica.pid for replica in cluster.replicas}
        assert len(pids) == 2
        assert os.getpid() not in pids
        for pid in pids:
            os.kill(pid, 0)  # alive (signal 0 = existence probe)


def test_sigkill_mid_load_then_restart_from_disk_is_linearizable(tmp_path):
    """The ISSUE 8 acceptance path: kill -9 a replica mid-load, restart it
    from its durable store, and require the full oracle — linearizable
    probe history, converged snapshots, zero marker boundary violations."""
    policy = CheckpointPolicy(every_messages=200, full_every=2, compact_after=2)
    cluster = proc_cluster(
        replicas=3, initial_keys=8, checkpoint_policy=policy,
        store_dir=str(tmp_path), seed=11,
    )
    with cluster:
        recorder = HistoryRecorder()
        errors = []

        def probe(client_index):
            client = cluster.client()
            rng = random.Random(100 + client_index)
            try:
                for step in range(40):
                    key = rng.randrange(4)
                    if rng.random() < 0.5:
                        value = f"c{client_index}s{step}".encode()
                        recorder.timed_call(
                            client_index, "update", {"key": key, "value": value},
                            lambda k=key, v=value: client.invoke(
                                "update", key=k, value=v, timeout=30
                            ).error,
                        )
                    else:
                        recorder.timed_call(
                            client_index, "read", {"key": key},
                            lambda k=key: _read(client, k),
                        )
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        def _read(client, key):
            response = client.invoke("read", key=key, timeout=30)
            return response.value if response.error is None else None

        threads = [threading.Thread(target=probe, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()

        # Persist a durable cut, then kill -9 the replica mid-load.
        cluster.checkpoint()
        victim = cluster.crash_replica(1)
        with pytest.raises(ProcessLookupError):
            os.kill(victim.pid, 0)  # the kernel really reaped it
        cluster.restart_replica_from_disk(1)

        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        cluster.wait_for_quiescence(timeout=30)
        snapshots = cluster.replica_snapshots(quiesce=False)
        assert len(snapshots) == 3
        assert all(s == snapshots[0] for s in snapshots)
        assert cluster.marker_boundary_violations == 0
        assert [t["mode"] for t in cluster.recovery_transfers]  # some path ran
    initial = {key: b"\x00" * 8 for key in range(8)}
    assert check_linearizable(recorder.operations, initial_state=initial)


def test_recover_replica_is_always_a_full_transfer():
    with proc_cluster(replicas=3) as cluster:
        client = cluster.client()
        for step in range(20):
            client.invoke("update", key=step % 16, value=f"v{step}".encode())
        cluster.crash_replica(2)
        cluster.recover_replica(2)
        assert [t["mode"] for t in cluster.recovery_transfers] == ["full"]
        snapshots = cluster.replica_snapshots()
        assert len(snapshots) == 3
        assert all(s == snapshots[0] for s in snapshots)


def test_fault_plane_mangles_real_socket_frames():
    plane = FaultPlane(seed=5, retransmit_backoff=0.01)
    plane.set_link(
        drop=0.1, delay=0.2, delay_range=(0.001, 0.01),
        duplicate=0.1, reorder=0.1, reorder_window=0.005,
    )
    with proc_cluster(replicas=2, fault_plane=plane) as cluster:
        client = cluster.client()
        plane.isolate("replica1")
        for step in range(15):
            # First response wins: the healthy replica keeps serving.
            assert client.invoke(
                "update", key=step % 16, value=f"v{step}".encode(), timeout=30
            ).error is None
        plane.heal()
        for step in range(15):
            assert client.invoke("read", key=step % 16, timeout=30).error is None
        cluster.wait_for_quiescence(timeout=30)
        snapshots = cluster.replica_snapshots(quiesce=False)
        assert snapshots[0] == snapshots[1]
        assert cluster.marker_boundary_violations == 0
    stats = plane.stats
    assert stats["delayed"] > 0
    assert stats["retransmits"] > 0 or stats["duplicates"] > 0


def _scripted_final_snapshot(cluster):
    """One deterministic single-client op script; returns the final state."""
    client = cluster.client()
    rng = random.Random(7)
    for step in range(60):
        key = rng.randrange(16)
        roll = rng.random()
        if roll < 0.5:
            client.invoke("update", key=key, value=f"v{step}".encode())
        elif roll < 0.8:
            client.invoke("read", key=key)
        else:
            client.invoke("insert", key=1000 + step, value=b"s")
    snapshots = cluster.replica_snapshots()
    assert all(s == snapshots[0] for s in snapshots)
    return snapshots[0]


def test_threaded_and_process_runtimes_agree():
    """Same scripted workload, same final state on both live runtimes."""
    with ThreadedPSMRCluster(
        spec=KVSTORE_SPEC,
        service_factory=lambda: KeyValueStoreServer(initial_keys=16),
        mpl=2, num_replicas=2, barrier_timeout=20.0,
    ) as threaded:
        threaded_state = _scripted_final_snapshot(threaded)
    with proc_cluster(mpl=2, replicas=2) as proc:
        proc_state = _scripted_final_snapshot(proc)
    assert proc_state == threaded_state


def test_proc_nemesis_episode_passes_oracle(tmp_path):
    """A seeded nemesis episode — SIGKILL crashes, socket-level partitions,
    restart-from-disk — passes the full oracle on the process runtime."""
    report = run_proc_nemesis_episode(
        seed=20260808, store_dir=str(tmp_path), steps=4, mean_gap=0.25
    )
    assert_episode_ok(report)
    assert report["runtime"] == "proc"
    assert report["linearizable"] and report["converged"]
    assert report["marker_boundary_violations"] == 0
