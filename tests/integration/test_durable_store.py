"""Fault-injection and recovery tests for the durable checkpoint store.

The acceptance criterion of the durable subsystem: **a crash at any byte of
a persist cycle leaves a recoverable longest-valid-prefix**.  The sweep
here injects a crash after every single byte offset of a full persist
cycle (base, three deltas, one compaction rewrite) via a ``CrashingFile``
opener, reopens the store cold each time, and asserts it loads exactly the
last chain whose manifest commit completed — never a torn manifest, never
a half-written segment (the checksums reject those).

On top of the byte sweep: checksum rejection of externally corrupted
segments and manifests, gossip-donated chain-suffix recovery when the
original donor is itself crashed (with a linearizability check across the
whole episode), process-restart recovery from disk in the threaded
cluster, and compaction accounting in the simulated runtime.
"""

import os

import pytest

from repro.common.checkpoint import CheckpointPolicy, compact_chain
from repro.common.checkpoint_store import ChainGossip, CheckpointStore
from repro.common.errors import CheckpointError, RecoveryError
from repro.harness.experiments.durable import run_durable_recovery
from repro.harness.runner import build_kv_system
from repro.runtime import ThreadedPSMRCluster, check_linearizable
from repro.runtime.linearizability import HistoryRecorder
from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer
from repro.workload import skewed_update_mix


# ----------------------------------------------------------------------
# Fault injection: crash after N bytes, for every N in a persist cycle
# ----------------------------------------------------------------------
class InjectedCrash(Exception):
    """The 'process died here' signal raised by :class:`CrashingFile`."""


class _WriteBudget:
    """Bytes the simulated process may still write before it dies.

    Shared across every file the store opens, so one budget models one
    crash point inside a multi-file persist cycle.  ``None`` disables
    crashing and just counts (the measurement pass).
    """

    def __init__(self, limit=None):
        self.limit = limit
        self.written = 0

    def consume(self, handle, data):
        if self.limit is None:
            self.written += len(data)
            handle.write(data)
            return
        remaining = self.limit - self.written
        if remaining <= 0:
            raise InjectedCrash("crashed before this write")
        if len(data) > remaining:
            # A torn write: part of the data reaches the disk, then death.
            handle.write(data[:remaining])
            handle.flush()
            self.written = self.limit
            raise InjectedCrash(f"crashed {remaining} bytes into a write")
        self.written += len(data)
        handle.write(data)


class CrashingFile:
    """A binary file whose writes die once the shared budget runs out."""

    def __init__(self, handle, budget):
        self._handle = handle
        self._budget = budget

    def write(self, data):
        self._budget.consume(self._handle, data)
        return len(data)

    def flush(self):
        self._handle.flush()

    def fileno(self):
        return self._handle.fileno()

    def close(self):
        self._handle.close()


def crashing_opener(budget):
    def opener(path, mode="wb"):
        return CrashingFile(open(path, mode), budget)
    return opener


def persist_cycle_steps():
    """The successive chain states of one scripted persist cycle.

    Built once from a deterministic key-value history: a full base, three
    deltas (with delete/recreate overlap), then a compaction rewrite —
    every kind of write the store performs.
    """
    server = KeyValueStoreServer(initial_keys=6)
    chain = [{"kind": "full", "sequence": 0, "payload": server.checkpoint()}]
    server.reset_delta_tracking()
    steps = [list(chain)]
    for index in range(1, 4):
        server.execute("update", {"key": index % 6, "value": b"u%d" % index})
        server.execute("insert", {"key": 10 + index, "value": b"n"})
        server.execute("delete", {"key": 10 + index - 1 if index > 1 else 0})
        chain.append(
            {
                "kind": "delta",
                "sequence": index,
                "payload": server.delta_checkpoint(),
            }
        )
        steps.append(list(chain))
    steps.append(compact_chain(chain))
    return steps


def run_cycle(directory, steps, budget):
    """Replay the persist cycle against one store.

    Returns ``(completed_syncs, crashed)`` — the count survives the
    injected crash, unlike an exception propagated out of a plain loop.
    """
    store = CheckpointStore(directory, opener=crashing_opener(budget))
    completed = 0
    try:
        for step in steps:
            store.sync_chain(step)
            completed += 1
    except InjectedCrash:
        return completed, True
    return completed, False


def chain_identity(chain):
    return [(entry["kind"], entry["sequence"]) for entry in chain]


def test_crash_at_every_byte_recovers_the_last_committed_chain(tmp_path):
    """Acceptance sweep: for every injected crash byte offset during the
    persist cycle, reopening the store recovers exactly the chain of the
    last completed sync — the longest valid prefix, bit-for-bit equal."""
    steps = persist_cycle_steps()
    # Measurement pass: how many bytes does the whole cycle write?
    probe = _WriteBudget(limit=None)
    completed, crashed = run_cycle(str(tmp_path / "probe"), steps, probe)
    assert completed == len(steps) and not crashed
    total_bytes = probe.written
    assert total_bytes > 0
    for crash_at in range(total_bytes):
        directory = str(tmp_path / f"crash-{crash_at}")
        budget = _WriteBudget(limit=crash_at)
        completed, crashed = run_cycle(directory, steps, budget)
        assert crashed, f"budget {crash_at} < {total_bytes} but no crash"
        # The dead process's store is gone; a fresh one reads the disk.
        reopened = CheckpointStore(directory)
        loaded = reopened.load_chain()
        if completed == 0:
            assert loaded == []
        else:
            expected = steps[completed - 1]
            assert chain_identity(loaded) == chain_identity(expected)
            assert [entry["payload"] for entry in loaded] == [
                entry["payload"] for entry in expected
            ]


def test_crash_free_cycle_persists_the_compacted_chain(tmp_path):
    steps = persist_cycle_steps()
    store = CheckpointStore(str(tmp_path))
    for step in steps:
        store.sync_chain(step)
    loaded = CheckpointStore(str(tmp_path)).load_chain()
    assert chain_identity(loaded) == [("full", 0), ("delta", 3)]
    # Compaction reuses the base segment and garbage-collects the old
    # delta segments: two files remain.
    assert store.segment_count() == 2
    segments = [
        name for name in os.listdir(str(tmp_path)) if name.startswith("seg-")
    ]
    assert len(segments) == 2


# ----------------------------------------------------------------------
# Checksums reject external corruption (torn segments / torn manifest)
# ----------------------------------------------------------------------
def _persisted_store(tmp_path):
    steps = persist_cycle_steps()
    store = CheckpointStore(str(tmp_path))
    store.sync_chain(steps[-2])  # [full, d1, d2, d3], no compaction
    return store


def test_torn_segment_cuts_the_chain_at_the_checksum(tmp_path):
    store = _persisted_store(tmp_path)
    records = store._records
    assert chain_identity(store.load_chain()) == [
        ("full", 0), ("delta", 1), ("delta", 2), ("delta", 3)
    ]
    # Truncate the third entry's segment: the chain ends before it.
    victim = os.path.join(str(tmp_path), records[2]["segment"])
    with open(victim, "r+b") as handle:
        handle.truncate(os.path.getsize(victim) - 1)
    loaded = CheckpointStore(str(tmp_path)).load_chain()
    assert chain_identity(loaded) == [("full", 0), ("delta", 1)]


def test_corrupt_base_segment_yields_no_chain(tmp_path):
    store = _persisted_store(tmp_path)
    victim = os.path.join(str(tmp_path), store._records[0]["segment"])
    with open(victim, "r+b") as handle:
        handle.seek(30)
        byte = handle.read(1)
        handle.seek(30)
        handle.write(bytes([byte[0] ^ 0xFF]))
    assert CheckpointStore(str(tmp_path)).load_chain() == []


def test_torn_manifest_line_drops_the_tail(tmp_path):
    _persisted_store(tmp_path)
    manifest = os.path.join(str(tmp_path), "MANIFEST")
    with open(manifest, "r+b") as handle:
        handle.truncate(os.path.getsize(manifest) - 5)  # tear the last line
    loaded = CheckpointStore(str(tmp_path)).load_chain()
    assert chain_identity(loaded) == [("full", 0), ("delta", 1), ("delta", 2)]


def test_leftover_manifest_tmp_is_ignored(tmp_path):
    _persisted_store(tmp_path)
    with open(os.path.join(str(tmp_path), "MANIFEST.tmp"), "wb") as handle:
        handle.write(b"garbage from a crashed rename\n")
    loaded = CheckpointStore(str(tmp_path)).load_chain()
    assert chain_identity(loaded) == [
        ("full", 0), ("delta", 1), ("delta", 2), ("delta", 3)
    ]


def test_append_delta_to_empty_store_is_a_typed_error(tmp_path):
    store = CheckpointStore(str(tmp_path))
    with pytest.raises(CheckpointError):
        store.append({"kind": "delta", "sequence": 1, "payload": {}})
    with pytest.raises(CheckpointError):
        store.append({"kind": "bogus", "sequence": 1, "payload": {}})


# ----------------------------------------------------------------------
# Chain gossip
# ----------------------------------------------------------------------
def test_gossip_donors_match_cuts_in_id_order():
    gossip = ChainGossip()
    gossip.publish(2, [("full", 5), ("delta", 7), ("delta", 9)])
    gossip.publish(0, [("full", 5), ("delta", 7)])
    gossip.publish(1, [("full", 9)])
    assert gossip.donors_for(7) == [0, 2]
    assert gossip.donors_for(9) == [1, 2]
    assert gossip.donors_for(9, exclude=(1,)) == [2]
    assert gossip.donors_for(4) == []
    gossip.drop(2)
    assert gossip.donors_for(7) == [0]
    assert gossip.manifest_of(2) == ()
    assert gossip.manifest_of(0) == (("full", 5), ("delta", 7))


# ----------------------------------------------------------------------
# Threaded cluster: gossip recovery and process restart from disk
# ----------------------------------------------------------------------
def kv_cluster(mpl=2, replicas=2, initial_keys=16, **kwargs):
    return ThreadedPSMRCluster(
        spec=KVSTORE_SPEC,
        service_factory=lambda: KeyValueStoreServer(initial_keys=initial_keys),
        mpl=mpl,
        num_replicas=replicas,
        barrier_timeout=20.0,
        **kwargs,
    )


def manual_policy(**kwargs):
    """Triggers never fire on their own: tests drive markers explicitly."""
    return CheckpointPolicy(every_messages=10_000_000, **kwargs)


def _read_value(client, key):
    response = client.invoke("read", key=key)
    return response.value if response.error is None else None


def test_gossiped_peer_donates_chain_suffix_when_original_donor_is_down():
    """Satellite scenario: the joiner's first-choice donor (lowest replica
    id, the one the pre-gossip negotiation would have used) is itself
    crashed; a gossiped peer donates the chain suffix instead.  The whole
    episode is checked linearizable."""
    recorder = HistoryRecorder()
    policy = manual_policy(full_every=8, max_replay_lag=5)
    with kv_cluster(replicas=3, initial_keys=16, checkpoint_policy=policy) as cluster:
        client = cluster.client()

        def update(key, value):
            recorder.timed_call(
                0, "update", {"key": key, "value": value},
                lambda k=key, v=value: client.invoke("update", key=k, value=v).error,
            )

        def read(key):
            recorder.timed_call(
                0, "read", {"key": key}, lambda k=key: _read_value(client, k)
            )

        for key in range(16):
            update(key, "before")
        cluster.wait_for_quiescence()
        cluster.periodic_checkpoint()  # full base on all three replicas
        for key in range(4):
            update(key, "d1")
        cluster.wait_for_quiescence()
        joiner_watermark = cluster.periodic_checkpoint()  # delta cut w
        cluster.crash_replica(2)
        # Push the joiner past the replay horizon while the survivors keep
        # checkpointing: their chains grow the deltas the joiner misses.
        for burst in range(2):
            for key in range(8):
                update(key, f"b{burst}")
            read(burst)
            cluster.wait_for_quiescence()
            cluster.periodic_checkpoint()
        assert cluster.replicas[2].needs_full_transfer
        assert cluster.multicast.min_retained() > joiner_watermark + 1
        # The original (lowest-id) donor dies too.
        cluster.crash_replica(0)
        replica = cluster.recover_replica(2)
        transfer = cluster.recovery_transfers[-1]
        assert transfer["mode"] == "chain-suffix"
        assert transfer["entries"] == 2  # exactly the two missed deltas
        assert replica.checkpoint_watermark > joiner_watermark
        # The donated lineage was advertised through the gossip registry.
        donated_cuts = [
            sequence for _kind, sequence in cluster.gossip.manifest_of(1)
        ]
        assert joiner_watermark in donated_cuts
        cluster.recover_replica(0)
        for key in range(4):
            update(key, "after")
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1] == snapshots[2]
    initial = {key: b"\x00" * 8 for key in range(16)}
    assert check_linearizable(recorder.operations, initial_state=initial)


def test_restart_from_disk_replays_on_top_of_the_durable_chain(tmp_path):
    """A crashed replica rejoins as a restarted process: its in-memory
    chain is wiped, the durable chain is reloaded from disk, and log
    replay finishes the job — linearizably, with converged replicas."""
    recorder = HistoryRecorder()
    policy = manual_policy(full_every=4)
    with kv_cluster(
        checkpoint_policy=policy, store_dir=str(tmp_path)
    ) as cluster:
        client = cluster.client()

        def update(key, value):
            recorder.timed_call(
                0, "update", {"key": key, "value": value},
                lambda k=key, v=value: client.invoke("update", key=k, value=v).error,
            )

        for key in range(16):
            update(key, "base")
        cluster.wait_for_quiescence()
        cluster.periodic_checkpoint()  # durable full
        for key in range(4):
            update(key, "delta")
        cluster.wait_for_quiescence()
        watermark = cluster.periodic_checkpoint()  # durable delta
        # A cold reopen of the replica's directory sees what the store does.
        on_disk = CheckpointStore(
            os.path.join(str(tmp_path), "replica-1")
        ).manifest()
        assert on_disk == cluster.stores[1].manifest()
        assert [kind for kind, _sequence in on_disk] == ["full", "delta"]
        assert on_disk[-1][1] == watermark
        cluster.crash_replica(1)
        # Simulate full process death: the in-memory chain is lost.
        cluster.replicas[1].checkpoint_chain = []
        cluster.replicas[1].checkpoint_watermark = -1
        for key in range(8):
            update(key, "while-down")
        replica = cluster.restart_replica_from_disk(1)
        assert replica.checkpoint_watermark == watermark
        assert cluster.recovery_transfers[-1]["mode"] == "replay"
        update(0, "after")
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]
    initial = {key: b"\x00" * 8 for key in range(16)}
    assert check_linearizable(recorder.operations, initial_state=initial)


def test_restart_from_disk_falls_back_to_full_when_disk_is_empty(tmp_path):
    policy = manual_policy(full_every=4)
    with kv_cluster(
        checkpoint_policy=policy, store_dir=str(tmp_path)
    ) as cluster:
        client = cluster.client()
        for key in range(8):
            client.invoke("update", key=key, value=b"base")
        cluster.wait_for_quiescence()
        cluster.periodic_checkpoint()
        cluster.crash_replica(1)
        cluster.stores[1].clear()  # the disk burned down with the process
        for key in range(8):
            client.invoke("update", key=key, value=b"while-down")
        cluster.restart_replica_from_disk(1)
        assert cluster.recovery_transfers[-1]["mode"] == "full"
        client.invoke("update", key=0, value=b"after")
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]


def test_restart_from_disk_requires_a_store():
    with kv_cluster(checkpoint_policy=manual_policy()) as cluster:
        client = cluster.client()
        client.invoke("update", key=0, value=b"x")
        cluster.crash_replica(1)
        with pytest.raises(RecoveryError):
            cluster.restart_replica_from_disk(1)
        cluster.recover_replica(1)


def test_compaction_bounds_the_durable_chain(tmp_path):
    """compact_after=2 keeps the durable chain at [full, merged-delta] while
    the cadence counter still forces the periodic full on schedule."""
    policy = manual_policy(full_every=6, compact_after=2)
    with kv_cluster(
        checkpoint_policy=policy, store_dir=str(tmp_path)
    ) as cluster:
        client = cluster.client()
        for round_index in range(7):
            for key in range(8):
                client.invoke(
                    "update", key=key, value=f"r{round_index}".encode()
                )
            cluster.wait_for_quiescence()
            cluster.periodic_checkpoint()
        # full, then deltas (compacted in place), then the cadence full.
        events = [
            event["kind"]
            for event in cluster.checkpoint_events
            if event["replica_id"] == 0
        ]
        assert events.count("compaction") >= 2
        assert cluster.compactions >= 2
        # The chain never holds more than one merged delta on disk.
        assert cluster.stores[0].segment_count() <= 2
        periodic = [kind for kind in events if kind != "compaction"]
        # full_every=6 allows five deltas, so the 7th periodic checkpoint
        # is full again: compaction must not fool the cadence even though
        # the chain itself never grows past [full, merged-delta].
        assert periodic[0] == "full"
        assert periodic[6] == "full"
        assert all(kind == "delta" for kind in periodic[1:6])
        # A crashed replica still recovers on top of its compacted chain.
        cluster.crash_replica(1)
        for key in range(4):
            client.invoke("update", key=key, value=b"down")
        cluster.recover_replica(1)
        client.invoke("update", key=0, value=b"after")
        snapshots = cluster.replica_snapshots()
        assert snapshots[0] == snapshots[1]


# ----------------------------------------------------------------------
# Simulated runtime: compaction accounting + gossiped chain donors
# ----------------------------------------------------------------------
def test_sim_compaction_collapses_chain_metadata_and_counts():
    system = build_kv_system(
        "P-SMR", 4, mix=skewed_update_mix(), execute_state=True,
        initial_keys=2048, key_space=2048, distribution="zipfian",
        zipf_theta=0.9, seed=5,
        checkpoint_policy=CheckpointPolicy(
            every_seconds=0.004, full_every=8, compact_after=3
        ),
    )
    system.run(warmup=0.01, duration=0.05)
    assert system.compactions > 0
    for chain in system._chains:
        assert len(chain["cuts"]) <= 4  # 1 full + at most compact_after deltas
    # Gossip mirrors the (possibly compacted) chains.
    for replica_id in system.live_replica_ids():
        manifest = system.gossip.manifest_of(replica_id)
        assert [cut for _kind, cut in manifest] == system._chains[replica_id]["cuts"]


def test_sim_recovery_uses_a_gossiped_chain_donor():
    system = build_kv_system(
        "P-SMR", 4, mix=skewed_update_mix(), execute_state=True,
        initial_keys=16384, key_space=16384, distribution="zipfian",
        zipf_theta=0.99, seed=5,
        checkpoint_policy=CheckpointPolicy(every_seconds=0.003, full_every=8),
    )
    system.schedule_crash(1, 0.022)
    system.schedule_recovery(1, 0.028)
    system.run(warmup=0.01, duration=0.06)
    record = system.recoveries[0]
    assert record.done
    assert record.transfer_mode == "delta"
    assert record.chain_donor_id in system.live_replica_ids()


# ----------------------------------------------------------------------
# Experiment smoke (the cli-smoke job runs the same driver)
# ----------------------------------------------------------------------
def test_durable_recovery_experiment_smoke(tmp_path):
    result = run_durable_recovery(
        warmup=0.005, duration=0.02, seed=1, chain_lengths=(1, 8),
        store_dir=str(tmp_path),
    )
    assert result["figure"] == "durable-recovery"
    rows = {row["deltas"]: row for row in result["rows"]}
    assert rows[8]["segments_raw"] == 9
    assert rows[8]["segments_compacted"] == 2
    assert rows[8]["disk_kb_compacted"] < rows[8]["disk_kb_raw"]
    assert result["episode"]["converged"]
    assert result["episode"]["transfer"] == "replay"
    assert "Durable recovery" in result["text"]
