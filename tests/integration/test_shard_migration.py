"""Integration tests: live shard migration on both runtimes (ISSUE 10).

The tentpole guarantees under test:

* a shard-map update is a totally-ordered barrier — commands routed
  under the old map order before it, commands under the new map after
  it, and the recorded client history stays linearizable across the
  migration (seeded episode, both runtimes);
* the hand-off artifact built at the cut restores to exactly the moved
  ranges' state (``verified`` flag from a fresh-service restore);
* replicas converge after migrations and the migration surface rejects
  invalid transitions.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.harness.nemesis import assert_episode_ok, run_shard_migration_episode
from repro.multicast.sharding import ShardMap
from repro.runtime import ProcessPSMRCluster, ThreadedPSMRCluster
from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer


def _threaded_cluster(mpl=4, key_space=256, num_replicas=2):
    return ThreadedPSMRCluster(
        KVSTORE_SPEC,
        lambda: KeyValueStoreServer(),
        mpl=mpl,
        num_replicas=num_replicas,
        barrier_timeout=15.0,
        seed=3,
        shard_map=ShardMap.initial(mpl, key_space=key_space),
    )


def test_threaded_explicit_split_and_move_migrates_state():
    with _threaded_cluster() as cluster:
        client = cluster.client()
        for key in range(0, 64):
            client.invoke("insert", key=key, value=key.to_bytes(2, "big"))
        old_map = cluster.shard_router.shard_map
        new_map = old_map.split(32)
        record = cluster.update_shard_map(new_map)
        # A pure split moves no ownership: nothing to hand off.
        assert record["moved_ranges"] == []
        assert record["to_version"] == 1
        moved_map = cluster.shard_router.shard_map.move(32, 4)
        record = cluster.update_shard_map(moved_map)
        assert record["moved_ranges"] == [(32, 64, 1, 4)]
        assert record["verified"] is True
        assert record["bytes"] > 0
        assert sorted(record["replicas"]) == [0, 1]
        # Routing follows the new map and service state is intact.
        assert cluster.cg.group_of_key(40) == 4
        for key in range(0, 64):
            response = client.invoke("read", key=key)
            assert response.error is None
            assert response.value == key.to_bytes(2, "big")
        snapshots = cluster.replica_snapshots()
        assert all(s == snapshots[0] for s in snapshots)
        assert [r["to_version"] for r in cluster.shard_migrations] == [1, 2]


def test_update_shard_map_rejects_bad_transitions():
    with _threaded_cluster() as cluster:
        current = cluster.shard_router.shard_map
        with pytest.raises(ConfigurationError):
            cluster.update_shard_map(current)  # version must advance by 1
        skipped = ShardMap(current.version + 2, current.bounds, current.groups)
        with pytest.raises(ConfigurationError):
            cluster.update_shard_map(skipped)
    plain = ThreadedPSMRCluster(
        KVSTORE_SPEC, lambda: KeyValueStoreServer(), mpl=2, num_replicas=1
    )
    with plain:
        with pytest.raises(ConfigurationError):
            cluster.update_shard_map(current)
        with pytest.raises(ConfigurationError):
            plain.rebalance_shards()


def test_rebalance_is_a_noop_under_even_load():
    with _threaded_cluster() as cluster:
        client = cluster.client()
        for key in range(0, 256, 4):  # even spread across all groups
            client.invoke("update", key=key, value=b"x")
        assert cluster.rebalance_shards(min_imbalance=1.25) is None
        assert cluster.shard_migrations == []


def test_threaded_migration_episode_is_linearizable():
    report = run_shard_migration_episode(20260808, runtime="threaded")
    assert_episode_ok(report)
    assert report["migrations"]
    assert report["final_map_version"] >= 1
    assert all(record["verified"] for record in report["migrations"])


def test_proc_migration_episode_is_linearizable():
    report = run_shard_migration_episode(20260808, runtime="proc")
    assert_episode_ok(report)
    assert report["migrations"]
    assert all(record["verified"] for record in report["migrations"])


def test_proc_migration_survives_crash_and_disk_restart():
    cluster = ProcessPSMRCluster(
        service="kvstore",
        mpl=4,
        num_replicas=2,
        barrier_timeout=15.0,
        seed=5,
        shard_map=ShardMap.initial(4, key_space=128),
    )
    with cluster:
        client = cluster.client()
        for key in range(64):
            client.invoke("insert", key=key, value=key.to_bytes(2, "big"))
        for round_index in range(150):
            client.invoke("update", key=round_index % 16, value=b"hot")
        cluster.crash_replica(1)
        record = cluster.rebalance_shards(min_imbalance=1.05)
        assert record is not None and record["verified"]
        assert record["replicas"] == [0]  # only the live replica reports
        for key in range(64):
            client.invoke("update", key=key, value=b"after")
        # The restarted replica replays across the shard-update frame.
        cluster.restart_replica_from_disk(1)
        for key in range(16):
            client.invoke("update", key=key, value=b"final")
        snapshots = cluster.replica_snapshots()
        assert all(s == snapshots[0] for s in snapshots)
