"""Nemesis suite: named fault scenarios + seeded randomized episodes.

The oracle for every scenario is the same three-part check the paper's
correctness claim rests on (section IV-E): the client-visible history is
linearizable, all replicas converge to identical service state, and no
checkpoint marker ever cuts through a half-executed batch
(``marker_boundary_violations == 0``).  Faults are injected through the
shared :class:`~repro.common.faults.FaultPlane`, which models the paper's
reliable multicast: faults are latency, never loss or reordering at the
delivery boundary.

Every randomized episode is seeded; a failing episode prints its seed
(and writes a JSON artifact when ``NEMESIS_ARTIFACT_DIR`` is set), and
re-running with that seed regenerates the identical nemesis plan — in
the simulated runtime the entire fault schedule replays byte-for-byte.
"""

import pytest

from repro.common.faults import FaultPlane, Nemesis
from repro.harness.nemesis import (
    SIM_KINDS,
    THREADED_KINDS,
    assert_episode_ok,
    run_sim_nemesis_episode,
    run_threaded_nemesis_episode,
)
from repro.runtime import HistoryRecorder, ThreadedPSMRCluster, check_kv_history
from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer


def make_cluster(plane, num_replicas=2, mpl=2, **kwargs):
    return ThreadedPSMRCluster(
        spec=KVSTORE_SPEC,
        service_factory=lambda: KeyValueStoreServer(initial_keys=16),
        mpl=mpl,
        num_replicas=num_replicas,
        seed=7,
        fault_plane=plane,
        **kwargs,
    )


# ----------------------------------------------------------------------
# Named scenarios, threaded runtime
# ----------------------------------------------------------------------

class TestPartitionHealThreaded:
    def test_partitioned_replica_catches_up_after_heal(self):
        plane = FaultPlane(seed=3, retransmit_backoff=0.005)
        with make_cluster(plane) as cluster:
            client = cluster.client()
            plane.isolate("replica1")
            for key in range(16):
                client.invoke("update", key=key, value=b"during-partition")
            # The isolated replica's deliveries are parked in the pipe, so
            # the multicast must report them as still pending (this is the
            # quiescence fix: a partition window must not look drained).
            assert cluster.multicast.pending_count(1) > 0
            plane.heal()
            cluster.wait_for_quiescence(timeout=20.0)
            assert cluster.multicast.pending_count() == 0
            snapshots = cluster.replica_snapshots(quiesce=False)
            assert snapshots[0] == snapshots[1]

    def test_quiescence_does_not_return_early_during_delay_window(self):
        # Regression: pending_count()/is_drained() must include copies the
        # fault plane is still holding.  A fixed 150 ms link delay keeps
        # deliveries in flight well past the enqueue; quiescence must wait
        # them out rather than observe empty worker queues and return.
        plane = FaultPlane(seed=5)
        plane.set_link(delay=1.0, delay_range=(0.15, 0.15))
        with make_cluster(plane) as cluster:
            client = cluster.client()
            pending = client.invoke_async("update", key=0, value=b"late")
            assert cluster.multicast.pending_count() > 0
            assert not cluster.multicast.is_drained()
            cluster.wait_for_quiescence(timeout=20.0)
            assert cluster.multicast.pending_count() == 0
            assert pending.result(timeout=1.0).error is None
            snapshots = cluster.replica_snapshots(quiesce=False)
            assert snapshots[0] == snapshots[1]


class TestLossyLinksThreaded:
    def test_drop_delay_duplicate_reorder_history_linearizable(self):
        plane = FaultPlane(seed=11, retransmit_backoff=0.002)
        plane.set_link(
            drop=0.3, delay=0.4, delay_range=(0.001, 0.005),
            duplicate=0.4, reorder=0.3, reorder_window=0.004,
        )
        recorder = HistoryRecorder()
        with make_cluster(plane, num_replicas=3, mpl=3) as cluster:
            client = cluster.client()

            def call(name, args):
                def invoke():
                    response = client.invoke(name, timeout=15.0, **args)
                    if name == "read":
                        return response.value if response.error is None else None
                    return None if response.error is None else response.error
                return invoke

            for index in range(30):
                name = ("insert", "read", "update", "read", "delete", "read")[index % 6]
                args = {"key": 100}
                if name in ("insert", "update"):
                    args["value"] = f"v{index}".encode()
                recorder.timed_call(client.client_id, name, args, call(name, args))
            cluster.wait_for_quiescence(timeout=20.0)
            snapshots = cluster.replica_snapshots(quiesce=False)
            assert all(s == snapshots[0] for s in snapshots)
            assert cluster.marker_boundary_violations == 0
        assert plane.stats["retransmits"] > 0 or plane.stats["duplicates"] > 0
        assert check_kv_history(recorder.operations, initial_state={})


# ----------------------------------------------------------------------
# Acceptance episodes (ISSUE 7): crash + partition + restart-from-disk +
# compaction interleaved under load, oracle-checked, seed-reproducible.
# ----------------------------------------------------------------------

class TestAcceptanceEpisodes:
    THREADED_SEED = 14  # plan covers all seven op kinds at steps=10

    def test_threaded_episode_all_fault_kinds(self, tmp_path):
        nemesis = Nemesis(self.THREADED_SEED, 3, steps=10, mean_gap=0.08,
                          kinds=THREADED_KINDS)
        kinds = {op.kind for op in nemesis.plan}
        assert {"crash", "partition", "restart_disk", "compact"} <= kinds
        report = run_threaded_nemesis_episode(
            seed=self.THREADED_SEED, store_dir=str(tmp_path), steps=10,
        )
        assert_episode_ok(report)
        assert report["linearizable"] and report["converged"]
        assert report["marker_boundary_violations"] == 0
        # Reproducibility: the same seed regenerates the identical plan.
        replay = Nemesis(self.THREADED_SEED, 3, steps=10, mean_gap=0.08,
                         kinds=THREADED_KINDS)
        assert replay.plan == nemesis.plan
        assert report["plan"] == [op.describe() for op in nemesis.plan]

    def test_sim_episode_with_byte_identical_replay(self):
        seed = 2  # plan covers partition, heal, crash, recover, checkpoint
        report = run_sim_nemesis_episode(seed=seed)
        assert_episode_ok(report)
        applied_kinds = {entry["op"].split()[2] for entry in report["applied"]}
        assert {"partition", "crash", "recover", "checkpoint"} <= applied_kinds
        # Virtual time makes the whole run deterministic: the replay's
        # fault schedule digest is identical, byte for byte.
        replay = run_sim_nemesis_episode(seed=seed)
        assert replay["schedule_digest"] == report["schedule_digest"]
        assert replay["plan"] == report["plan"]
        assert replay["probe_operations"] == report["probe_operations"]


# ----------------------------------------------------------------------
# Seeded randomized sweeps (fixed seeds so CI is deterministic)
# ----------------------------------------------------------------------

class TestSeededSweeps:
    @pytest.mark.parametrize("seed", [7, 23, 101])
    def test_threaded_sweep(self, tmp_path, seed):
        report = run_threaded_nemesis_episode(seed=seed, store_dir=str(tmp_path))
        assert_episode_ok(report)

    @pytest.mark.parametrize("seed", [1, 3, 4, 5, 9, 13])
    def test_sim_sweep(self, seed):
        assert_episode_ok(run_sim_nemesis_episode(seed=seed))


# ----------------------------------------------------------------------
# Failure reporting: the seed must be printed and the artifact written
# ----------------------------------------------------------------------

class TestFailureReporting:
    def test_failed_episode_prints_seed_and_writes_artifact(self, tmp_path):
        report = {
            "runtime": "sim",
            "seed": 4242,
            "ok": False,
            "failures": ["replica states diverged"],
            "plan": ["[0] t+0.010s crash replica1"],
        }
        with pytest.raises(AssertionError) as excinfo:
            assert_episode_ok(report, artifact_dir=str(tmp_path))
        message = str(excinfo.value)
        assert "seed=4242" in message
        assert "run_sim_nemesis_episode(seed=4242)" in message
        artifact = tmp_path / "nemesis-sim-seed4242.json"
        assert artifact.exists()
        assert "replica states diverged" in artifact.read_text()

    def test_passing_episode_returns_report(self):
        report = {"runtime": "threaded", "seed": 1, "ok": True, "failures": []}
        assert assert_episode_ok(report) is report


# ----------------------------------------------------------------------
# Simulated runtime: quiescence accounts for in-flight fault deliveries
# ----------------------------------------------------------------------

class TestSimQuiescence:
    def test_quiesce_waits_for_delayed_links(self):
        from repro.harness.runner import build_kv_system
        from repro.workload import mixed_workload

        plane = FaultPlane(seed=9, retransmit_backoff=0.001)
        # Heavy fixed delays: at quiesce time many deliveries are parked
        # inside SimFaultyLink queues rather than worker mailboxes.
        plane.set_link(delay=1.0, delay_range=(0.002, 0.004))
        system = build_kv_system(
            "P-SMR", 2, mix=mixed_workload(0.1), num_clients=4,
            key_space=64, initial_keys=32, execute_state=True, seed=9,
            fault_plane=plane, num_replicas=2,
        )
        system.run(warmup=0.005, duration=0.02)
        outstanding = system.quiesce(limit=5.0)
        assert outstanding == 0
        assert system.fault_in_flight() == 0
        states = [system.replica_state(r).snapshot() for r in (0, 1)]
        counts = [system.replica_state(r).commands_executed for r in (0, 1)]
        assert states[0] == states[1]
        assert counts[0] == counts[1]
