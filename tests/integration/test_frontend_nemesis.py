"""Frontend-under-nemesis: faults surface as latency or 503, never wrong data.

One seeded fault episode (partitions, crashes, recoveries, checkpoints)
where every probe travels through the full HTTP edge.  The oracle is the
same as the runtime-level nemesis suite — drained multicast, converged
replicas, linearizable history — plus an HTTP-specific clause: the only
statuses a client may ever see are 200/404/409 (model results), 429
(shed before submission) and 503 (indeterminate timeout).  Anything else
means a fault leaked out as a wrong answer.
"""

from repro.harness.nemesis import assert_episode_ok, run_frontend_nemesis_episode

ALLOWED_STATUSES = {200, 404, 409, 429, 503}


def test_frontend_episode_seed_11_is_linearizable():
    report = run_frontend_nemesis_episode(seed=11)
    assert_episode_ok(report)
    assert report["linearizable"] is True
    assert report["converged"] is True
    assert report["drained"] is True
    assert not report["bad_statuses"]
    assert set(report["status_counts"]) <= ALLOWED_STATUSES
    # The plan actually exercised faults (seed 11 includes crash+partition).
    # describe() format: "[step] t+0.000s <kind> replicaN"
    kinds = {entry["op"].split()[2] for entry in report["applied"]}
    assert "crash" in kinds or "partition" in kinds
    # Probes made it into the history and were all accounted for.
    assert report["probe_operations"] > 0
    assert not report["probe_errors"]
