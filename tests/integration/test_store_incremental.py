"""Incremental-persist guarantees of the durable checkpoint store.

ISSUE 6's persist-cycle audit, pinned as regression tests:

* appending a delta to a durable chain writes **only** the new segment and
  the manifest — the inodes and mtimes of every already-persisted segment
  are untouched (no re-serialisation, no re-fsync of the unchanged prefix);
* compaction reuses the base segment file and rewrites only the merged
  delta;
* segments written by older releases with ``pickle.dumps(..., protocol=4)``
  load through the codec-aware reader, and a chain can mix codecs freely.
"""

import os
import pickle
import struct
import zlib

from repro.common import codec
from repro.common.checkpoint import compact_chain
from repro.common.checkpoint_store import CheckpointStore


def _entry(kind, sequence, payload):
    return {"kind": kind, "sequence": sequence, "payload": payload}


def _segment_stats(store):
    """``{segment name: (inode, mtime_ns, size)}`` for the committed chain."""
    stats = {}
    for record in store._records:
        info = os.stat(os.path.join(store.directory, record["segment"]))
        stats[record["segment"]] = (info.st_ino, info.st_mtime_ns, info.st_size)
    return stats


class TestIncrementalPersist:
    def test_delta_append_leaves_old_segments_untouched(self, tmp_path):
        store = CheckpointStore(tmp_path / "replica-0")
        chain = [_entry("full", 10, {"tree": {"order": 4, "items": [(1, b"a")]},
                                     "commands_executed": 1})]
        store.sync_chain(chain)
        before = _segment_stats(store)
        assert len(before) == 1

        for sequence in (20, 30, 40):
            chain = [*chain, _entry("delta", sequence,
                                    {"order": 4, "changes": [(sequence, b"v")],
                                     "deletions": [], "commands_executed": sequence})]
            store.sync_chain(chain)
            after = _segment_stats(store)
            # Every previously-committed segment is bit-for-bit the same
            # file: same inode, same mtime, same size.  Only one new
            # segment appears per delta append.
            for name, stat in before.items():
                assert after[name] == stat, f"segment {name} was rewritten"
            assert len(after) == len(before) + 1
            before = after

    def test_noop_sync_writes_nothing(self, tmp_path):
        store = CheckpointStore(tmp_path / "replica-0")
        chain = [
            _entry("full", 5, {"a": 1}),
            _entry("delta", 9, {"b": 2}),
        ]
        store.sync_chain(chain)
        manifest_path = os.path.join(store.directory, "MANIFEST")
        before = _segment_stats(store)
        manifest_before = os.stat(manifest_path).st_mtime_ns
        store.sync_chain(chain)  # identical chain: nothing may be written
        assert _segment_stats(store) == before
        assert os.stat(manifest_path).st_mtime_ns == manifest_before

    def test_compaction_reuses_base_segment(self, tmp_path):
        store = CheckpointStore(tmp_path / "replica-0")
        chain = [_entry("full", 0, {"tree": {"order": 4, "items": []},
                                    "commands_executed": 0})]
        store.sync_chain(chain)
        base_name, base_stat = next(iter(_segment_stats(store).items()))
        for sequence in (1, 2, 3):
            chain = [*chain, _entry("delta", sequence,
                                    {"order": 4, "changes": [(sequence, b"x")],
                                     "deletions": [],
                                     "commands_executed": sequence})]
        store.sync_chain(chain)
        compacted = compact_chain(chain)
        assert len(compacted) == 2  # base + one merged delta
        store.sync_chain(compacted)
        after = _segment_stats(store)
        assert after[base_name] == base_stat  # base reused, not rewritten
        assert len(after) == 2

    def test_reopened_store_appends_without_rewriting(self, tmp_path):
        store = CheckpointStore(tmp_path / "replica-0")
        chain = [_entry("full", 1, {"n": 1}), _entry("delta", 2, {"n": 2})]
        store.sync_chain(chain)
        before = _segment_stats(store)
        reopened = CheckpointStore(tmp_path / "replica-0")
        reopened.sync_chain([*chain, _entry("delta", 3, {"n": 3})])
        after = _segment_stats(reopened)
        for name, stat in before.items():
            assert after[name] == stat
        assert len(after) == 3


class TestCodecCompatibility:
    def test_protocol4_segments_still_load(self, tmp_path):
        """A store written by an older release (protocol-4 pickle) loads."""
        directory = tmp_path / "replica-0"
        store = CheckpointStore(directory)
        payload = {"tree": {"order": 4, "items": [(1, b"a"), (2, b"b")]},
                   "commands_executed": 7}
        store.sync_chain([_entry("full", 3, payload)])
        # Rewrite the committed segment the way the old code did: same
        # header format, payload pinned to pickle protocol 4.
        record = store._records[0]
        raw = pickle.dumps(payload, protocol=4)
        header = struct.Struct(">8sQI").pack(
            b"PSMRSEG1", len(raw), zlib.crc32(raw) & 0xFFFFFFFF
        )
        path = os.path.join(str(directory), record["segment"])
        with open(path, "wb") as handle:
            handle.write(header + raw)
        record["length"] = len(raw)
        record["crc"] = zlib.crc32(raw) & 0xFFFFFFFF
        store._commit_manifest(store._records)

        chain = CheckpointStore(directory).load_chain()
        assert chain == [_entry("full", 3, payload)]

    def test_mixed_codec_chain_loads(self, tmp_path):
        """Binary and pickle segments coexist in one chain (upgrade path)."""
        directory = tmp_path / "replica-0"
        legacy = CheckpointStore(directory, codec="pickle")
        legacy.sync_chain([_entry("full", 1, {"a": [1, 2, 3]})])
        upgraded = CheckpointStore(directory, codec="binary")
        upgraded.sync_chain([
            _entry("full", 1, {"a": [1, 2, 3]}),
            _entry("delta", 2, {"changes": [(9, b"z")], "deletions": []}),
        ])
        chain = CheckpointStore(directory).load_chain()
        assert [entry["sequence"] for entry in chain] == [1, 2]
        assert chain[0]["payload"] == {"a": [1, 2, 3]}
        assert chain[1]["payload"]["changes"] == [(9, b"z")]

    def test_binary_segments_are_smaller(self, tmp_path):
        items = [(key, b"\x00" * 8) for key in range(1000)]
        payload = {"tree": {"order": 64, "items": items},
                   "commands_executed": 1000}
        binary = CheckpointStore(tmp_path / "binary", codec="binary")
        pickled = CheckpointStore(tmp_path / "pickle", codec="pickle")
        binary.sync_chain([_entry("full", 1, payload)])
        pickled.sync_chain([_entry("full", 1, payload)])
        assert binary.disk_bytes() < pickled.disk_bytes()
        assert binary.load_chain() == pickled.load_chain()

    def test_encode_decode_symmetry_for_store_payloads(self):
        payload = {"tree": {"order": 64, "items": [(k, bytes([k % 251]))
                                                   for k in range(100)]},
                   "commands_executed": 2**70}
        assert codec.decode(codec.dumps(payload, "binary")) == payload
        assert codec.decode(codec.dumps(payload, "pickle")) == payload
