"""Service-level tests for the HTTP frontend (ISSUE 9).

Three layers of guarantee, each checked against a live replicated
cluster behind the real ASGI app:

* **contract** — status codes and body shapes of the public API
  (422 on malformed input, 404/409 on model errors, health/stats);
* **linearizability** — concurrent HTTP clients recorded into a
  :class:`HistoryRecorder` and checked with :func:`check_kv_history`,
  so the edge (routing, validation, limiter, asyncio bridge) provably
  does not reorder or invent acknowledgements;
* **backpressure** — at a one-slot in-flight window the frontend must
  shed load with ``429`` + ``Retry-After`` and never lose a write it
  acknowledged with ``200``.

The linearizability and backpressure suites run on BOTH the threaded
and the process-per-replica runtimes.
"""

import asyncio
import time

import pytest

from repro.frontend import ClusterBackend, InFlightLimiter, create_app
from repro.frontend.models import encode_value
from repro.frontend.testing import AsgiClient
from repro.runtime import ProcessPSMRCluster, ThreadedPSMRCluster
from repro.runtime.linearizability import HistoryRecorder, check_kv_history
from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer
from repro.services.netfs import NETFS_SPEC, NetFSServer

RUNTIMES = ("threaded", "proc")


def make_kv_cluster(flavour, initial_keys=32, mpl=2, replicas=2):
    if flavour == "threaded":
        return ThreadedPSMRCluster(
            KVSTORE_SPEC,
            lambda: KeyValueStoreServer(initial_keys=initial_keys),
            mpl=mpl,
            num_replicas=replicas,
            barrier_timeout=20.0,
        )
    return ProcessPSMRCluster(
        service="kvstore",
        service_args={"initial_keys": initial_keys},
        mpl=mpl,
        num_replicas=replicas,
        barrier_timeout=20.0,
    )


def kv_app(cluster, max_in_flight=64, request_timeout=15.0):
    return create_app(
        kv_backend=ClusterBackend(cluster),
        limiter=InFlightLimiter(max_in_flight=max_in_flight),
        request_timeout=request_timeout,
    )


# ----------------------------------------------------------------------
# API contract
# ----------------------------------------------------------------------
class TestContract:
    @pytest.fixture(scope="class")
    def client(self):
        with make_kv_cluster("threaded", initial_keys=32, mpl=4) as cluster:
            http = AsgiClient(kv_app(cluster))
            yield http
            asyncio.run(http.aclose())

    def test_read_seeded_key(self, client):
        response = asyncio.run(client.get("/kv/1"))
        assert response.status_code == 200
        payload = response.json()
        assert payload["key"] == 1
        assert set(payload) == {"key", "value", "encoding"}
        assert encode_value(payload["value"], payload["encoding"]) == b"\x00" * 8

    def test_read_unknown_key_is_404(self, client):
        response = asyncio.run(client.get("/kv/999999"))
        assert response.status_code == 404

    def test_non_integer_key_is_422(self, client):
        response = asyncio.run(client.get("/kv/not-a-key"))
        assert response.status_code == 422

    def test_put_without_value_is_422(self, client):
        response = asyncio.run(client.put("/kv/5", json={"mode": "upsert"}))
        assert response.status_code == 422

    def test_put_with_unknown_field_is_422(self, client):
        response = asyncio.run(
            client.put("/kv/5", json={"value": "x", "surprise": 1})
        )
        assert response.status_code == 422

    def test_put_with_bad_mode_is_422(self, client):
        response = asyncio.run(
            client.put("/kv/5", json={"value": "x", "mode": "clobber"})
        )
        assert response.status_code == 422

    def test_put_with_invalid_base64_is_422(self, client):
        response = asyncio.run(
            client.put("/kv/5", json={"value": "!!!", "encoding": "base64"})
        )
        assert response.status_code == 422

    def test_insert_existing_key_is_409(self, client):
        response = asyncio.run(
            client.put("/kv/2", json={"value": "x", "mode": "insert"})
        )
        assert response.status_code == 409

    def test_update_missing_key_is_404(self, client):
        response = asyncio.run(
            client.put("/kv/424242", json={"value": "x", "mode": "update"})
        )
        assert response.status_code == 404

    def test_write_read_delete_roundtrip(self, client):
        async def roundtrip():
            put = await client.put(
                "/kv/7001", json={"value": "hello", "mode": "insert"}
            )
            assert put.status_code == 200
            assert put.json() == {"key": 7001, "applied": "insert"}
            got = await client.get("/kv/7001")
            assert got.status_code == 200
            payload = got.json()
            assert encode_value(payload["value"], payload["encoding"]) == b"hello"
            gone = await client.delete("/kv/7001")
            assert gone.status_code == 200
            assert (await client.get("/kv/7001")).status_code == 404

        asyncio.run(roundtrip())

    def test_delete_missing_key_is_404(self, client):
        response = asyncio.run(client.delete("/kv/888888"))
        assert response.status_code == 404

    def test_batch_mixed_ops(self, client):
        body = {
            "ops": [
                {"op": "insert", "key": 7100, "value": "a"},
                {"op": "read", "key": 7100},
                {"op": "read", "key": 654321},
                {"op": "delete", "key": 7100},
            ]
        }
        response = asyncio.run(client.post("/kv/batch", json=body))
        assert response.status_code == 200
        results = response.json()["results"]
        assert len(results) == 4
        assert results[0]["ok"] is True
        assert results[1]["ok"] is True
        assert encode_value(results[1]["value"], results[1]["encoding"]) == b"a"
        assert results[2]["ok"] is False
        assert results[2]["error"] == "not_found"
        assert results[3]["ok"] is True

    def test_empty_batch_is_422(self, client):
        response = asyncio.run(client.post("/kv/batch", json={"ops": []}))
        assert response.status_code == 422

    def test_healthz(self, client):
        response = asyncio.run(client.get("/healthz"))
        assert response.status_code == 200
        payload = response.json()
        assert payload["status"] == "ok"
        assert payload["runtime"] == "threaded"
        assert payload["live_replicas"] == 2
        assert payload["num_replicas"] == 2

    def test_stats_shape(self, client):
        response = asyncio.run(client.get("/stats"))
        assert response.status_code == 200
        payload = response.json()
        assert "kv" in payload and "limiter" in payload
        assert payload["kv"]["submitted"] >= 1
        assert payload["limiter"]["max_in_flight"] == 64

    def test_unrouted_path_is_404(self, client):
        response = asyncio.run(client.get("/kv"))
        assert response.status_code == 404


class TestNetFSContract:
    @pytest.fixture(scope="class")
    def client(self):
        cluster = ThreadedPSMRCluster(
            NETFS_SPEC,
            NetFSServer,
            mpl=2,
            num_replicas=2,
            barrier_timeout=20.0,
        )
        with cluster:
            app = create_app(
                fs_backend=ClusterBackend(cluster),
                limiter=InFlightLimiter(max_in_flight=64),
                request_timeout=15.0,
            )
            http = AsgiClient(app)
            yield http
            asyncio.run(http.aclose())

    def test_file_lifecycle_over_http(self, client):
        async def lifecycle():
            made = await client.post("/fs/dir/project")
            assert made.status_code == 201
            wrote = await client.put(
                "/fs/file/project/notes.txt", json={"data": "line one"}
            )
            assert wrote.status_code == 200
            read = await client.get("/fs/file/project/notes.txt")
            assert read.status_code == 200
            payload = read.json()
            assert encode_value(payload["data"], payload["encoding"]) == b"line one"
            listing = await client.get("/fs/dir/project")
            assert listing.status_code == 200
            assert "notes.txt" in listing.json()["entries"]
            stat = await client.get("/fs/stat/project/notes.txt")
            assert stat.status_code == 200
            assert stat.json()["stat"]["is_dir"] is False
            assert stat.json()["stat"]["size"] == len(b"line one")
            gone = await client.delete("/fs/file/project/notes.txt")
            assert gone.status_code == 200
            assert (await client.get("/fs/file/project/notes.txt")).status_code == 404

        asyncio.run(lifecycle())

    def test_missing_file_and_duplicate_dir(self, client):
        async def errors():
            assert (await client.get("/fs/file/nope.txt")).status_code == 404
            assert (await client.post("/fs/dir/dup")).status_code == 201
            assert (await client.post("/fs/dir/dup")).status_code == 409
            root = await client.get("/fs/dir/")
            assert root.status_code == 200
            assert "dup" in root.json()["entries"]

        asyncio.run(errors())


# ----------------------------------------------------------------------
# Linearizability through the HTTP edge
# ----------------------------------------------------------------------
async def _recorded_http_op(http, recorder, client_id, name, key, value=None):
    """Issue one KV op over HTTP and record it for the checker.

    429 is retried (the request was never submitted, so it is not part
    of the history); 503 is recorded as pending (possibly applied).
    Any other unexpected status fails the test outright.
    """
    args = {"key": key}
    if value is not None:
        args["value"] = value
    while True:
        invoked_at = time.monotonic()
        if name == "read":
            response = await http.get(f"/kv/{key}")
        elif name == "delete":
            response = await http.delete(f"/kv/{key}")
        else:
            response = await http.put(
                f"/kv/{key}", json={"value": value.decode(), "mode": name}
            )
        if response.status_code == 429:
            await asyncio.sleep(float(response.headers.get("retry-after", 0.01)))
            continue
        if response.status_code == 503:
            recorder.record_pending(client_id, name, args, invoked_at)
            return response
        returned_at = time.monotonic()
        result = None
        if name == "read":
            if response.status_code == 200:
                payload = response.json()
                result = encode_value(payload["value"], payload["encoding"])
            else:
                assert response.status_code == 404, response.status_code
        else:
            if response.status_code == 404:
                result = "err=1"
            elif response.status_code == 409:
                result = "err=2"
            else:
                assert response.status_code == 200, response.status_code
        recorder.record(client_id, name, args, result, invoked_at, returned_at)
        return response


@pytest.mark.parametrize("flavour", RUNTIMES)
def test_concurrent_http_clients_are_linearizable(flavour):
    """Many async HTTP clients hammer two keys; the history must check out."""
    recorder = HistoryRecorder()
    keys = (9001, 9002)  # above initial_keys: both start absent

    async def one_client(http, client_id):
        import random

        rng = random.Random(4000 + client_id)
        for op_index in range(10):
            key = keys[(client_id + op_index) % len(keys)]
            name = rng.choice(("insert", "read", "update", "read", "delete"))
            value = f"c{client_id}o{op_index}".encode()
            await _recorded_http_op(
                http, recorder, client_id, name, key,
                value if name in ("insert", "update") else None,
            )

    async def drive(app):
        http = AsgiClient(app)
        try:
            await asyncio.gather(*(one_client(http, cid) for cid in range(6)))
        finally:
            await http.aclose()

    with make_kv_cluster(flavour, initial_keys=16) as cluster:
        asyncio.run(drive(kv_app(cluster)))

    assert len(recorder.operations) == 60
    assert check_kv_history(recorder.operations, initial_state={})


# ----------------------------------------------------------------------
# Backpressure: shed load, never lose an acknowledged write
# ----------------------------------------------------------------------
@pytest.mark.parametrize("flavour", RUNTIMES)
def test_backpressure_sheds_load_without_losing_acked_writes(flavour):
    """A one-slot window under 24 concurrent writers must produce 429s
    (with a Retry-After header) and still persist every 200-acked PUT."""
    acked = {}
    saw_429 = []

    async def writer(http, index):
        key = 8100 + index
        value = f"w{index}"
        while True:
            response = await http.put(
                f"/kv/{key}", json={"value": value, "mode": "insert"}
            )
            if response.status_code == 429:
                retry_after = response.headers.get("retry-after")
                assert retry_after is not None
                assert float(retry_after) >= 0
                saw_429.append(index)
                await asyncio.sleep(float(retry_after))
                continue
            assert response.status_code == 200, response.status_code
            acked[key] = value.encode()
            return

    async def verify(http):
        for key, value in acked.items():
            response = await http.get(f"/kv/{key}")
            assert response.status_code == 200, (
                f"acknowledged write to key {key} was lost"
            )
            payload = response.json()
            assert encode_value(payload["value"], payload["encoding"]) == value

    async def drive(app):
        http = AsgiClient(app)
        try:
            await asyncio.gather(*(writer(http, index) for index in range(24)))
            await verify(http)
        finally:
            await http.aclose()

    with make_kv_cluster(flavour, initial_keys=8) as cluster:
        asyncio.run(drive(kv_app(cluster, max_in_flight=1)))

    assert saw_429, "a one-slot window under 24 writers should reject some"
    assert len(acked) == 24  # every writer eventually got through


class _ScriptedKV:
    """A ``ClusterBackend`` double: ``submit`` plays back scripted KV
    error strings and samples the limiter while the command is in
    flight, so tests can pin exactly when slots are held."""

    def __init__(self, limiter, errors):
        self.limiter = limiter
        self.errors = list(errors)
        self.calls = []  # (command name, in_flight sampled during submit)

    async def submit(self, name, timeout=None, **args):
        self.calls.append((name, self.limiter.in_flight))
        await asyncio.sleep(0)  # a real backend always yields the loop
        import types

        return types.SimpleNamespace(error=self.errors.pop(0), value=None)


class TestUpsertAdmission:
    """The upsert fallback chain must admit each leg separately and
    report a lost race as 409, never 503 (503 means indeterminate)."""

    def _put(self, app, key=1):
        async def drive():
            http = AsgiClient(app)
            try:
                return await http.put(
                    f"/kv/{key}", json={"value": "v", "mode": "upsert"}
                )
            finally:
                await http.aclose()

        return asyncio.run(drive())

    def test_upsert_admits_each_leg_separately(self):
        limiter = InFlightLimiter(max_in_flight=1)
        # update misses, the insert fallback wins.
        backend = _ScriptedKV(limiter, ["err=1", None])
        app = create_app(kv_backend=backend, limiter=limiter)
        response = self._put(app)
        assert response.status_code == 200
        assert response.json()["applied"] == "insert"
        assert [name for name, _ in backend.calls] == ["update", "insert"]
        # One acquire per leg (the old code admitted once for the whole
        # chain), each leg holding exactly one slot, all released.
        assert limiter.stats()["admitted"] == 2
        assert all(in_flight == 1 for _, in_flight in backend.calls)
        assert limiter.in_flight == 0

    def test_lost_upsert_race_is_409_not_503(self):
        limiter = InFlightLimiter(max_in_flight=4)
        # Racing deleters/inserters defeat all three legs.
        backend = _ScriptedKV(limiter, ["err=1", "err=2", "err=1"])
        app = create_app(kv_backend=backend, limiter=limiter)
        response = self._put(app)
        assert response.status_code == 409
        assert [name for name, _ in backend.calls] == [
            "update", "insert", "update"
        ]
        assert limiter.stats()["admitted"] == 3
        assert limiter.in_flight == 0


@pytest.mark.parametrize("flavour", RUNTIMES)
def test_concurrent_upserts_share_a_tiny_window(flavour):
    """16 upserters and 2 deleters race one key through a two-slot
    window: every upsert must finish 200 (applied) or 409 (clean
    conflict) — never 503 — and the window must drain to zero."""
    statuses = []

    async def backoff(response):
        await asyncio.sleep(float(response.headers.get("retry-after", 0.01)))

    async def upserter(http, index):
        while True:
            response = await http.put(
                "/kv/9500", json={"value": f"u{index}", "mode": "upsert"}
            )
            if response.status_code == 429:
                await backoff(response)
                continue
            statuses.append(response.status_code)
            return

    async def deleter(http):
        for _ in range(6):
            response = await http.delete("/kv/9500")
            if response.status_code == 429:
                await backoff(response)
                continue
            assert response.status_code in (200, 404), response.status_code

    async def drive(app):
        http = AsgiClient(app)
        try:
            await asyncio.gather(
                *(upserter(http, index) for index in range(16)),
                deleter(http),
                deleter(http),
            )
            final = await http.get("/kv/9500")
            assert final.status_code in (200, 404)
        finally:
            await http.aclose()

    with make_kv_cluster(flavour, initial_keys=8) as cluster:
        app = kv_app(cluster, max_in_flight=2)
        asyncio.run(drive(app))
        assert set(statuses) <= {200, 409}
        assert statuses.count(200) >= 1
        assert app.limiter.in_flight == 0


def test_limiter_stats_track_rejections():
    with make_kv_cluster("threaded", initial_keys=8) as cluster:
        app = kv_app(cluster, max_in_flight=1)

        async def drive():
            http = AsgiClient(app)
            try:
                await asyncio.gather(
                    *(
                        http.put(f"/kv/{8200 + i}", json={"value": "v"})
                        for i in range(16)
                    )
                )
            finally:
                await http.aclose()

        asyncio.run(drive())
        stats = app.limiter.stats()
        assert stats["peak_in_flight"] == 1
        assert stats["admitted"] + stats["rejected"] >= 16


def test_backend_timeout_maps_to_503():
    """An unstarted cluster never answers: the edge must 503, not hang."""
    cluster = make_kv_cluster("threaded", initial_keys=4)
    app = create_app(
        kv_backend=ClusterBackend(cluster),
        limiter=InFlightLimiter(max_in_flight=4),
        request_timeout=0.05,
    )

    async def drive():
        http = AsgiClient(app)
        try:
            return await http.get("/kv/1")
        finally:
            await http.aclose()

    response = asyncio.run(drive())
    assert response.status_code == 503
    stats = app.kv_backend.stats()
    assert stats["timed_out"] >= 1
