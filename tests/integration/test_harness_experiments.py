"""Integration tests for the per-figure experiment drivers (tiny scale)."""

import pytest

from repro.harness.experiments import (
    run_ablation_batch_size,
    run_ablation_cg_granularity,
    run_ablation_merge_policy,
    run_fig3_independent,
    run_fig4_dependent,
    run_fig5_scalability,
    run_fig6_mixed,
    run_fig7_skew,
    run_fig8_netfs,
    run_nemesis,
    run_table1,
)

TINY = dict(warmup=0.004, duration=0.012)


def test_table1_matches_paper():
    result = run_table1(threads=2)
    assert result["matches_paper"] is True
    assert {row["technique"] for row in result["rows"]} == {"SMR", "sP-SMR", "P-SMR"}
    assert "Table I" in result["text"]


def test_fig3_structure_and_ordering():
    result = run_fig3_independent(techniques=["SMR", "P-SMR"], **TINY)
    rows = {row["technique"]: row for row in result["rows"]}
    assert rows["P-SMR"]["factor_vs_SMR"] > 1.5
    assert rows["SMR"]["paper_factor"] == 1.0
    assert "Figure 3" in result["text"]


def test_fig4_structure_and_ordering():
    result = run_fig4_dependent(techniques=["SMR", "P-SMR"], **TINY)
    rows = {row["technique"]: row for row in result["rows"]}
    assert rows["P-SMR"]["factor_vs_SMR"] < 1.0
    assert "Figure 4" in result["text"]


def test_fig5_series_structure():
    result = run_fig5_scalability(
        techniques=("P-SMR",), thread_counts=(1, 2), workloads=("independent",), **TINY
    )
    series = result["series"][("independent", "P-SMR")]
    assert [threads for threads, _thr, _norm in series] == [1, 2]
    assert series[0][2] == pytest.approx(1.0)


def test_fig6_reports_breakeven():
    result = run_fig6_mixed(percentages=(0.01, 10.0), psmr_threads=4, **TINY)
    assert len(result["rows"]) == 2
    assert result["paper_breakeven_percent"] == 10.0
    assert result["rows"][0]["psmr_ahead"] in (True, False)


def test_fig7_covers_both_distributions():
    result = run_fig7_skew(
        techniques=("P-SMR",), thread_counts=(1, 2), distributions=("uniform", "zipfian"), **TINY
    )
    distributions = {row["distribution"] for row in result["rows"]}
    assert distributions == {"uniform", "zipfian"}


def test_fig8_reads_and_writes():
    result = run_fig8_netfs(techniques=["SMR", "P-SMR"], **TINY)
    operations = {row["operation"] for row in result["rows"]}
    assert operations == {"read", "write"}
    psmr_read = next(
        row for row in result["rows"]
        if row["technique"] == "P-SMR" and row["operation"] == "read"
    )
    assert psmr_read["factor_vs_SMR"] > 1.5


def test_nemesis_experiment_smoke():
    result = run_nemesis(**TINY, seed=3)
    faults = [row["fault"] for row in result["rows"]]
    assert faults[0] == "baseline"
    assert {"drop", "delay", "partition", "crash"} <= set(faults)
    assert all(row["converged"] for row in result["rows"])
    # The lossy arms must actually cost throughput relative to baseline.
    by_fault = {row["fault"]: row for row in result["rows"]}
    assert by_fault["drop"]["degradation_pct"] > 0
    # Both seeded oracle episodes pass, and the seed is printed for
    # one-command reproduction.
    assert result["summary"]["sim_episode_ok"] is True
    assert result["summary"]["threaded_episode_ok"] is True
    assert "--seed 3" in result["summary"]["reproduce"]
    assert "seeded randomized episodes" in result["text"]


def test_ablation_drivers_return_rows():
    merge = run_ablation_merge_policy(threads=2, **TINY)
    assert {row["merge_policy"] for row in merge["rows"]} == {"timestamp", "round_robin"}
    cg = run_ablation_cg_granularity(threads=2, **TINY)
    assert len(cg["rows"]) == 2
    batch = run_ablation_batch_size(threads=2, sizes=(1024, 8192), **TINY)
    assert [row["batch_bytes"] for row in batch["rows"]] == [1024, 8192]
