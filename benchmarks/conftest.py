"""Shared settings for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper at reduced
scale (short simulated measurement windows) and prints the corresponding
table so the output can be compared against the paper side by side.
"""

#: Simulated warmup and measurement durations used by every benchmark.
WARMUP = 0.01
DURATION = 0.03
