"""Figure 6: mixed workloads and P-SMR's breakeven point.

Paper result: P-SMR (8 threads) stays ahead of SMR up to roughly 10% of
dependent commands; its throughput (and latency) fall as the percentage of
dependent commands grows.
"""

from conftest import DURATION, WARMUP

from repro.harness.experiments import run_fig6_mixed


def test_fig6_mixed_workloads(benchmark):
    result = benchmark.pedantic(
        run_fig6_mixed,
        kwargs={
            "warmup": WARMUP,
            "duration": DURATION,
            "percentages": (0.001, 0.01, 0.1, 1.0, 5.0, 10.0, 20.0),
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + result["text"])
    rows = result["rows"]
    by_percent = {row["dependent_percent"]: row for row in rows}

    # With almost no dependent commands P-SMR is far ahead of SMR.
    assert by_percent[0.001]["psmr_kcps"] > 2.5 * by_percent[0.001]["smr_kcps"]
    # P-SMR throughput decreases as the dependent percentage grows.
    kcps = [row["psmr_kcps"] for row in rows]
    assert all(later <= earlier * 1.02 for earlier, later in zip(kcps, kcps[1:]))
    # The breakeven point falls in the paper's ballpark (a few percent .. ~20%).
    breakeven = result["measured_breakeven_percent"]
    assert breakeven is not None and 1.0 <= breakeven <= 20.0
    # By 20% dependent commands P-SMR has fallen below SMR.
    assert not by_percent[20.0]["psmr_ahead"]
