"""Figure 3: performance of independent commands (read-only KV workload).

Paper result: P-SMR ~3.15x SMR, sP-SMR ~1.14x, no-rep ~1.22x, BDB lowest;
P-SMR's latency at peak is the highest of the replicated techniques.
"""

from conftest import DURATION, WARMUP

from repro.harness.experiments import run_fig3_independent


def test_fig3_independent_commands(benchmark):
    result = benchmark.pedantic(
        run_fig3_independent,
        kwargs={"warmup": WARMUP, "duration": DURATION},
        rounds=1,
        iterations=1,
    )
    print("\n" + result["text"])
    rows = {row["technique"]: row for row in result["rows"]}

    # Shape checks against the paper's factors.
    assert rows["P-SMR"]["factor_vs_SMR"] > 2.5, "P-SMR should beat SMR by >2.5x"
    assert rows["sP-SMR"]["factor_vs_SMR"] > 1.0
    assert rows["no-rep"]["factor_vs_SMR"] > 1.0
    assert rows["BDB"]["factor_vs_SMR"] < 0.5, "lock-based server is the slowest"
    # The scheduler caps sP-SMR and no-rep well below P-SMR.
    assert rows["P-SMR"]["throughput_kcps"] > 2 * rows["sP-SMR"]["throughput_kcps"]
    # Latency ordering at peak throughput (section VII-C).
    assert rows["P-SMR"]["avg_latency_ms"] > rows["sP-SMR"]["avg_latency_ms"]
    assert rows["sP-SMR"]["avg_latency_ms"] > rows["SMR"]["avg_latency_ms"]
