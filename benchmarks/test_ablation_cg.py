"""Ablation: C-G granularity (per-key mapping vs the coarse mapping).

Paper section IV-C presents both: the coarse C-G sends every state-modifying
command to all groups; the per-key C-G assigns commands on the same key to
the same group.  Under a 50% update workload the coarse mapping forfeits
almost all of P-SMR's concurrency.
"""

from conftest import DURATION, WARMUP

from repro.harness.experiments import run_ablation_cg_granularity


def test_ablation_cg_granularity(benchmark):
    result = benchmark.pedantic(
        run_ablation_cg_granularity,
        kwargs={"warmup": WARMUP, "duration": DURATION, "threads": 8},
        rounds=1,
        iterations=1,
    )
    print("\n" + result["text"])
    rows = {row["cg"]: row for row in result["rows"]}
    fine = rows["per-key C-G"]["throughput_kcps"]
    coarse = rows["coarse C-G"]["throughput_kcps"]
    assert fine > 2.0 * coarse, "per-key C-G should unlock far more concurrency"
