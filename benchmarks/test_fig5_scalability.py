"""Figure 5: throughput versus the number of worker threads.

Paper result: with independent commands only P-SMR keeps improving as
threads are added (the scheduler caps sP-SMR/no-rep, locking caps BDB);
with dependent commands every technique except BDB degrades as threads are
added.
"""

from conftest import WARMUP

from repro.harness.experiments import run_fig5_scalability

THREADS = (1, 2, 4, 8)


def test_fig5_scalability(benchmark):
    result = benchmark.pedantic(
        run_fig5_scalability,
        kwargs={
            "warmup": WARMUP,
            "duration": 0.02,
            "thread_counts": THREADS,
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + result["text"])
    series = result["series"]

    def throughputs(workload, technique):
        return [kcps for _threads, kcps, _norm in series[(workload, technique)]]

    # Independent workload: P-SMR grows monotonically and ends >2.5x its
    # single-thread rate; the others gain little or lose after 2 threads.
    psmr = throughputs("independent", "P-SMR")
    assert psmr[-1] > 2.5 * psmr[0]
    assert all(later >= earlier * 0.98 for earlier, later in zip(psmr, psmr[1:]))
    spsmr = throughputs("independent", "sP-SMR")
    assert spsmr[-1] < 1.6 * spsmr[0], "scheduler caps sP-SMR scaling"
    norep = throughputs("independent", "no-rep")
    assert norep[-1] < 1.6 * norep[0]

    # Dependent workload: P-SMR, sP-SMR and no-rep all degrade with threads.
    for technique in ("P-SMR", "sP-SMR", "no-rep"):
        dependent = throughputs("dependent", technique)
        assert dependent[-1] < dependent[0], technique

    # Per-thread normalised throughput of P-SMR stays the highest at 8 threads.
    norm_at_8 = {
        technique: series[("independent", technique)][-1][2]
        for technique in ("P-SMR", "sP-SMR", "no-rep")
    }
    assert norm_at_8["P-SMR"] == max(norm_at_8.values())
