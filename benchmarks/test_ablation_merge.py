"""Ablation: deterministic merge policy (timestamp vs round-robin).

The default timestamp merge never throttles a busy stream; the Multi-Ring
Paxos style round-robin merge couples every stream's delivery rate to the
slowest (skip-rate-bound) stream, which costs throughput when some streams
are idle.
"""

from conftest import DURATION, WARMUP

from repro.harness.experiments import run_ablation_merge_policy


def test_ablation_merge_policy(benchmark):
    result = benchmark.pedantic(
        run_ablation_merge_policy,
        kwargs={"warmup": WARMUP, "duration": DURATION, "threads": 4},
        rounds=1,
        iterations=1,
    )
    print("\n" + result["text"])
    rows = {row["merge_policy"]: row for row in result["rows"]}
    assert rows["timestamp"]["throughput_kcps"] > 0
    assert rows["round_robin"]["throughput_kcps"] > 0
    # The timestamp merge should not be slower than round robin.
    assert rows["timestamp"]["throughput_kcps"] >= rows["round_robin"]["throughput_kcps"]
