"""Table I: degrees of parallelism in SMR, sP-SMR and P-SMR."""

from repro.harness.experiments import run_table1


def test_table1_degrees_of_parallelism(benchmark):
    result = benchmark.pedantic(run_table1, kwargs={"threads": 4}, rounds=1, iterations=1)
    print("\n" + result["text"])
    assert result["matches_paper"] is True
    by_technique = {row["technique"]: row for row in result["rows"]}
    assert by_technique["SMR"]["delivery"] == "sequential"
    assert by_technique["SMR"]["execution"] == "sequential"
    assert by_technique["sP-SMR"]["delivery"] == "sequential"
    assert by_technique["sP-SMR"]["execution"] == "parallel"
    assert by_technique["P-SMR"]["delivery"] == "parallel"
    assert by_technique["P-SMR"]["execution"] == "parallel"
