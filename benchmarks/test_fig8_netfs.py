"""Figure 8: NetFS read and write performance.

Paper result: SMR caps at ~100 Kcps (reads) / ~110 Kcps (writes); sP-SMR
improves only ~1.1-1.2x because the scheduler saturates; P-SMR reaches
~3x for both reads and writes.  Read latency exceeds write latency because
compressing the 1 KB response costs more than decompressing the request.
"""

from conftest import DURATION, WARMUP

from repro.harness.experiments import run_fig8_netfs


def test_fig8_netfs(benchmark):
    result = benchmark.pedantic(
        run_fig8_netfs,
        kwargs={"warmup": WARMUP, "duration": DURATION},
        rounds=1,
        iterations=1,
    )
    print("\n" + result["text"])
    rows = {(row["operation"], row["technique"]): row for row in result["rows"]}

    for operation in ("read", "write"):
        psmr = rows[(operation, "P-SMR")]
        spsmr = rows[(operation, "sP-SMR")]
        assert psmr["factor_vs_SMR"] > 2.5, f"P-SMR should reach ~3x for {operation}s"
        assert 0.9 < spsmr["factor_vs_SMR"] < 1.6, "scheduler limits sP-SMR to ~1.1-1.2x"
        assert psmr["throughput_kcps"] > 2 * spsmr["throughput_kcps"]

    # Reads are more expensive than writes for the single-threaded baseline
    # (compression asymmetry), hence lower throughput.
    assert rows[("read", "SMR")]["throughput_kcps"] < rows[("write", "SMR")]["throughput_kcps"]
    # And read latency is higher than write latency for P-SMR.
    assert rows[("read", "P-SMR")]["avg_latency_ms"] > rows[("write", "P-SMR")]["avg_latency_ms"]
