"""Benchmark baseline runner (ISSUE 6): the committed performance trajectory.

Measures the threaded P-SMR runtime end to end — wall-clock, real threads —
and emits ``BENCH_baseline.json``, the file every later optimisation is
judged against.  Each workload is run twice on identical drivers:

* **before** — ``delivery_batch_size=1``: the legacy loop, one lock
  round-trip per delivered command, one response hand-off per execution;
* **after** — batched delivery: workers drain up to ``--batch`` commands
  per wakeup and flush responses in batches.

The speedup recorded per workload is therefore a same-machine, same-run
ratio; CI compares ratios, never absolute numbers, so the gate survives
machine changes.  Workload names mirror the paper figures they are shaped
after: ``fig3_independent`` (read-only, uniform keys — pure parallel mode)
and ``fig7_skew`` (50/50 read/update, zipfian keys).

All timing uses ``time.perf_counter()`` — never the wall clock.

Usage::

    PYTHONPATH=src python benchmarks/baseline.py --out BENCH_baseline.json
    PYTHONPATH=src python benchmarks/baseline.py --smoke --out /tmp/b.json
    PYTHONPATH=src python benchmarks/baseline.py --smoke --check BENCH_baseline.json
"""

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from collections import deque

from repro.common import codec
from repro.common.checkpoint import CheckpointPolicy
from repro.core.command import Command
from repro.metrics.recorders import LatencyRecorder
from repro.runtime import ThreadedPSMRCluster, check_linearizable
from repro.runtime.linearizability import HistoryRecorder
from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer
from repro.workload import KVWorkloadGenerator, READ_ONLY_MIX, skewed_update_mix

SCHEMA_VERSION = 1

#: Workloads measured by the baseline, named after the paper figures whose
#: shape they reproduce on the threaded runtime.
WORKLOADS = {
    "fig3_independent": {
        "mix": dict(READ_ONLY_MIX),
        "distribution": "uniform",
        "zipf_theta": 1.0,
    },
    "fig7_skew": {
        "mix": skewed_update_mix(),
        "distribution": "zipfian",
        "zipf_theta": 1.0,
    },
}


# ----------------------------------------------------------------------
# Workload driver (threaded runtime, pipelined clients)
# ----------------------------------------------------------------------
def _client_loop(cluster, generator, ops, window, recorder, start_barrier, errors):
    try:
        client = cluster.client()
        inflight = deque()
        start_barrier.wait()
        for _ in range(ops):
            name, args, _size = generator.next_invocation()
            submitted = time.perf_counter()
            inflight.append((submitted, client.invoke_async(name, **args)))
            if len(inflight) >= window:
                submitted, handle = inflight.popleft()
                handle.result(timeout=60.0)
                recorder.record(time.perf_counter() - submitted)
        while inflight:
            submitted, handle = inflight.popleft()
            handle.result(timeout=60.0)
            recorder.record(time.perf_counter() - submitted)
    except Exception as exc:  # pragma: no cover - failure reporting
        errors.append(exc)


def run_threaded_workload(spec, batch_size, *, ops_per_client, clients, window,
                          mpl, replicas, key_space, seed, warmup_ops):
    """One workload arm; returns the measurement record."""
    cluster = ThreadedPSMRCluster(
        spec=KVSTORE_SPEC,
        service_factory=lambda: KeyValueStoreServer(initial_keys=key_space),
        mpl=mpl,
        num_replicas=replicas,
        barrier_timeout=60.0,
        delivery_batch_size=batch_size,
    )
    recorder = LatencyRecorder()
    with cluster:
        def launch(ops, rec):
            errors = []
            barrier = threading.Barrier(clients + 1)
            threads = [
                threading.Thread(
                    target=_client_loop,
                    args=(
                        cluster,
                        KVWorkloadGenerator(
                            mix=spec["mix"],
                            key_space=key_space,
                            distribution=spec["distribution"],
                            zipf_theta=spec["zipf_theta"],
                            seed=seed + 100 + index,
                        ),
                        ops,
                        window,
                        rec,
                        barrier,
                        errors,
                    ),
                )
                for index in range(clients)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            started = time.perf_counter()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            if errors:
                raise errors[0]
            return elapsed

        if warmup_ops:
            launch(warmup_ops, LatencyRecorder())
        elapsed = launch(ops_per_client, recorder)
        stats = cluster.delivery_batch_stats()
    total_ops = ops_per_client * clients
    summary = recorder.summary()
    return {
        "batch_size": batch_size,
        "ops": total_ops,
        "elapsed_s": elapsed,
        "throughput_ops": total_ops / elapsed if elapsed > 0 else 0.0,
        "latency_mean_s": summary["mean"],
        "latency_p50_s": summary["p50"],
        "latency_p99_s": summary["p99"],
        "avg_delivery_batch": stats["avg_batch"],
    }


# ----------------------------------------------------------------------
# Checkpoint / durability section
# ----------------------------------------------------------------------
def run_checkpoint_section(*, ops, key_space, batch_size, seed):
    """Durable-checkpoint cost and restart-from-disk latency, batched runtime."""
    policy = CheckpointPolicy(every_messages=max(50, ops // 8),
                              full_every=3, compact_after=4)
    with tempfile.TemporaryDirectory(prefix="bench-ckpt-") as store_dir:
        cluster = ThreadedPSMRCluster(
            spec=KVSTORE_SPEC,
            service_factory=lambda: KeyValueStoreServer(initial_keys=key_space),
            mpl=2,
            num_replicas=2,
            barrier_timeout=60.0,
            delivery_batch_size=batch_size,
            checkpoint_policy=policy,
            checkpoint_poll_interval=0.001,
            store_dir=store_dir,
        )
        with cluster:
            client = cluster.client()
            generator = KVWorkloadGenerator(
                mix=skewed_update_mix(), key_space=key_space,
                distribution="uniform", seed=seed + 7,
            )
            inflight = deque()
            for _ in range(ops):
                name, args, _size = generator.next_invocation()
                inflight.append(client.invoke_async(name, **args))
                if len(inflight) >= 32:
                    inflight.popleft().result(timeout=60.0)
            while inflight:
                inflight.popleft().result(timeout=60.0)
            cluster.periodic_checkpoint()
            cluster.wait_for_quiescence()
            store_bytes = sum(
                store.disk_bytes() for store in cluster.stores.values()
            )
            segments = sum(
                store.segment_count() for store in cluster.stores.values()
            )
            cluster.crash_replica(1)
            started = time.perf_counter()
            cluster.restart_replica_from_disk(1)
            restart_latency = time.perf_counter() - started
            cluster.wait_for_quiescence()
            converged = (
                cluster.replicas[0].service.checksum()
                == cluster.replicas[1].service.checksum()
            )
            return {
                "ops": ops,
                "checkpoints_taken": cluster.checkpoints_taken,
                "compactions": cluster.compactions,
                "checkpoint_bytes": dict(cluster.checkpoint_bytes),
                "store_disk_bytes": store_bytes,
                "store_segments": segments,
                "restart_from_disk_s": restart_latency,
                "restart_converged": converged,
                "marker_boundary_violations": cluster.marker_boundary_violations,
            }


# ----------------------------------------------------------------------
# Codec microbenchmark section
# ----------------------------------------------------------------------
def _time_us(fn, repeat=30):
    started = time.perf_counter()
    for _ in range(repeat):
        fn()
    return (time.perf_counter() - started) / repeat * 1e6


def run_codec_section(items=5000):
    full = {
        "tree": {"order": 64, "items": [(key * 3, b"\x00" * 8) for key in range(items)]},
        "commands_executed": items,
    }
    delta = {
        "order": 64,
        "changes": [(key * 3, bytes([key % 251]) * 8) for key in range(items // 5)],
        "deletions": list(range(0, items // 5, 2)),
        "commands_executed": items + items // 5,
    }
    command = Command(
        uid=(12, 34567), name="update",
        args={"key": 123456789, "value": b"\x01" * 8},
        destinations=frozenset({3}),
    )
    section = {}
    for name, payload in (("full_checkpoint", full), ("delta_checkpoint", delta)):
        binary = codec.dumps(payload, "binary")
        pickled = codec.dumps(payload, "pickle")
        assert codec.decode(binary) == codec.decode(pickled) == payload
        section[name] = {
            "binary_bytes": len(binary),
            "pickle_bytes": len(pickled),
            "bytes_ratio": len(binary) / len(pickled),
            "binary_encode_us": _time_us(lambda p=payload: codec.dumps(p, "binary")),
            "pickle_encode_us": _time_us(lambda p=payload: codec.dumps(p, "pickle")),
            "binary_decode_us": _time_us(lambda b=binary: codec.decode(b)),
            "pickle_decode_us": _time_us(lambda b=pickled: codec.decode(b)),
        }
    wire_binary = codec.encode_command(command)
    from repro.runtime.multicast import encode_wire

    wire_pickle = encode_wire(command, "pickle")
    section["command_wire"] = {
        "binary_bytes": len(wire_binary),
        "pickle_bytes": len(wire_pickle),
        "round_trips": codec.decode_command(wire_binary) == command,
    }
    return section


# ----------------------------------------------------------------------
# Linearizability section
# ----------------------------------------------------------------------
def run_linearizability_section(batch_size):
    """Small concurrent history on the batched runtime, checked exactly."""
    cluster = ThreadedPSMRCluster(
        spec=KVSTORE_SPEC,
        service_factory=lambda: KeyValueStoreServer(initial_keys=4),
        mpl=3,
        num_replicas=2,
        barrier_timeout=60.0,
        delivery_batch_size=batch_size,
    )
    recorder = HistoryRecorder()
    with cluster:
        barrier = threading.Barrier(3)

        def worker(client_index):
            client = cluster.client()
            barrier.wait()
            for step in range(5):
                key = step % 3
                if (client_index + step) % 2 == 0:
                    recorder.timed_call(
                        client_index, "update",
                        {"key": key, "value": bytes([client_index + 1])},
                        lambda k=key, c=client_index: client.invoke(
                            "update", key=k, value=bytes([c + 1])
                        ).error,
                    )
                else:
                    recorder.timed_call(
                        client_index, "read", {"key": key},
                        lambda k=key: client.invoke("read", key=k).value,
                    )

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        violations = cluster.marker_boundary_violations
    initial = {key: b"\x00" * 8 for key in range(4)}
    ok = check_linearizable(recorder.operations, initial_state=initial)
    return {
        "operations": len(recorder.operations),
        "linearizable": bool(ok),
        "marker_boundary_violations": violations,
    }


# ----------------------------------------------------------------------
# Orchestration, schema, regression gate
# ----------------------------------------------------------------------
def _scale(args):
    # Two pipelined clients saturate the cluster without oversubscribing
    # the host: more client threads just steal cycles from the workers and
    # flatten the before/after contrast on small machines.  Smoke mode cuts
    # the key space and op count but keeps the measurement window long
    # enough (thousands of ops per arm) for the speedup ratio to be stable.
    return {
        "ops_per_client": 2000 if args.smoke else 6000,
        "clients": 2,
        "window": args.window,
        "mpl": args.mpl,
        "replicas": 2,
        "key_space": 2000 if args.smoke else 20000,
        "seed": args.seed,
        "warmup_ops": 200 if args.smoke else 400,
    }


def _measure_workload_pair(name, args, scale):
    spec = WORKLOADS[name]
    before = run_threaded_workload(spec, 1, **scale)
    after = run_threaded_workload(spec, args.batch, **scale)
    speedup = (
        after["throughput_ops"] / before["throughput_ops"]
        if before["throughput_ops"] > 0 else 0.0
    )
    print(
        f"{name}: before {before['throughput_ops']:.0f} ops/s, "
        f"after {after['throughput_ops']:.0f} ops/s "
        f"(x{speedup:.2f}, avg batch {after['avg_delivery_batch']:.1f}, "
        f"p99 {after['latency_p99_s'] * 1e3:.2f} ms)",
        file=sys.stderr,
    )
    return {"before": before, "after": after, "speedup": speedup}


def run_baseline(args):
    scale = _scale(args)
    workloads = {
        name: _measure_workload_pair(name, args, scale) for name in WORKLOADS
    }
    checkpoint = run_checkpoint_section(
        ops=300 if args.smoke else 2000,
        key_space=scale["key_space"],
        batch_size=args.batch,
        seed=args.seed,
    )
    return {
        "version": SCHEMA_VERSION,
        "config": {
            "smoke": bool(args.smoke),
            "batch": args.batch,
            "window": args.window,
            "mpl": args.mpl,
            "seed": args.seed,
            "ops_per_client": scale["ops_per_client"],
            "clients": scale["clients"],
            "key_space": scale["key_space"],
        },
        "workloads": workloads,
        "checkpoint": checkpoint,
        "codec": run_codec_section(items=1000 if args.smoke else 5000),
        "linearizability": run_linearizability_section(args.batch),
    }


def validate_schema(document):
    """Raise ``ValueError`` unless ``document`` has the baseline shape."""
    def need(mapping, key, kind, where):
        if key not in mapping:
            raise ValueError(f"missing {where}.{key}")
        if not isinstance(mapping[key], kind):
            raise ValueError(
                f"{where}.{key} must be {kind}, got {type(mapping[key]).__name__}"
            )
        return mapping[key]

    if not isinstance(document, dict):
        raise ValueError("baseline document must be an object")
    if document.get("version") != SCHEMA_VERSION:
        raise ValueError(f"unsupported baseline version {document.get('version')!r}")
    need(document, "config", dict, "$")
    workloads = need(document, "workloads", dict, "$")
    for name in WORKLOADS:
        workload = need(workloads, name, dict, "workloads")
        for arm in ("before", "after"):
            record = need(workload, arm, dict, f"workloads.{name}")
            for field in (
                "throughput_ops", "latency_p50_s", "latency_p99_s",
                "latency_mean_s", "elapsed_s", "avg_delivery_batch",
            ):
                need(record, field, (int, float), f"workloads.{name}.{arm}")
            need(record, "ops", int, f"workloads.{name}.{arm}")
            need(record, "batch_size", int, f"workloads.{name}.{arm}")
        need(workload, "speedup", (int, float), f"workloads.{name}")
    checkpoint = need(document, "checkpoint", dict, "$")
    for field in ("store_disk_bytes", "restart_from_disk_s",
                  "marker_boundary_violations", "checkpoints_taken"):
        need(checkpoint, field, (int, float), "checkpoint")
    need(checkpoint, "checkpoint_bytes", dict, "checkpoint")
    codec_section = need(document, "codec", dict, "$")
    for payload in ("full_checkpoint", "delta_checkpoint"):
        record = need(codec_section, payload, dict, "codec")
        need(record, "binary_bytes", int, f"codec.{payload}")
        need(record, "pickle_bytes", int, f"codec.{payload}")
    linearizability = need(document, "linearizability", dict, "$")
    if need(linearizability, "linearizable", bool, "linearizability") is not True:
        raise ValueError("baseline run was not linearizable")
    if checkpoint["marker_boundary_violations"] != 0:
        raise ValueError("marker cuts did not land on batch boundaries")
    return document


def check_against(document, committed_path, tolerance=0.8, remeasure=None):
    """CI regression gate: measured speedups vs the committed baseline.

    Absolute throughput is machine-dependent, so the gate compares the
    same-run before/after *ratio* against the committed ratio: a change
    that erodes the batching win by more than ``1 - tolerance`` (default
    20%) fails.  A workload below its floor is re-measured once before
    failing — single-run ratios on shared CI runners are noisy, and one
    retry separates real regressions from scheduler jitter.
    """
    with open(committed_path, "r", encoding="utf-8") as handle:
        committed = validate_schema(json.load(handle))
    failures = []
    for name in WORKLOADS:
        measured = document["workloads"][name]["speedup"]
        reference = committed["workloads"][name]["speedup"]
        floor = reference * tolerance
        if measured < floor and remeasure is not None:
            print(f"gate {name}: x{measured:.2f} below floor, re-measuring once",
                  file=sys.stderr)
            measured = max(measured, remeasure(name)["speedup"])
        status = "ok" if measured >= floor else "REGRESSED"
        print(
            f"gate {name}: measured x{measured:.2f} vs committed x{reference:.2f} "
            f"(floor x{floor:.2f}) -> {status}",
            file=sys.stderr,
        )
        if measured < floor:
            failures.append(name)
    if failures:
        raise SystemExit(
            f"throughput regression >20% on: {', '.join(failures)}"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", help="write the baseline JSON here")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced configuration for CI")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a committed baseline (CI gate)")
    parser.add_argument("--batch", type=int, default=64,
                        help="delivery batch size of the 'after' arm")
    parser.add_argument("--window", type=int, default=32,
                        help="pipelined invocations per client")
    parser.add_argument("--mpl", type=int, default=2,
                        help="worker threads per replica")
    parser.add_argument("--seed", type=int, default=20260808)
    args = parser.parse_args(argv)

    document = validate_schema(run_baseline(args))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    if args.check:
        check_against(
            document, args.check,
            remeasure=lambda name: _measure_workload_pair(name, args, _scale(args)),
        )
    return document


if __name__ == "__main__":
    main()
