"""Figure 4: performance of dependent commands (insert/delete workload).

Paper result: SMR is the fastest (no synchronisation overhead); P-SMR
reaches ~0.5x SMR, no-rep ~0.32x, sP-SMR ~0.28x and BDB ~0.12x.
"""

from conftest import DURATION, WARMUP

from repro.harness.experiments import run_fig4_dependent


def test_fig4_dependent_commands(benchmark):
    result = benchmark.pedantic(
        run_fig4_dependent,
        kwargs={"warmup": WARMUP, "duration": DURATION},
        rounds=1,
        iterations=1,
    )
    print("\n" + result["text"])
    rows = {row["technique"]: row for row in result["rows"]}

    # SMR wins when every command is dependent.
    for technique in ("P-SMR", "sP-SMR", "no-rep", "BDB"):
        assert rows[technique]["factor_vs_SMR"] < 1.0, technique
    # Relative ordering of the paper: SMR > P-SMR > no-rep/sP-SMR > BDB.
    assert rows["P-SMR"]["factor_vs_SMR"] > rows["sP-SMR"]["factor_vs_SMR"]
    assert rows["P-SMR"]["factor_vs_SMR"] > rows["BDB"]["factor_vs_SMR"]
    assert rows["sP-SMR"]["factor_vs_SMR"] > rows["BDB"]["factor_vs_SMR"]
    # P-SMR lands near the paper's 0.5x.
    assert 0.3 < rows["P-SMR"]["factor_vs_SMR"] < 0.7
