"""Ablation: multicast batch size (the paper's prototype uses 8 KB batches).

Small batches pay a Paxos round per handful of commands and cap the
ordering layer's throughput; the paper's 8 KB batches amortise that cost.
"""

from conftest import DURATION, WARMUP

from repro.harness.experiments import run_ablation_batch_size


def test_ablation_batch_size(benchmark):
    result = benchmark.pedantic(
        run_ablation_batch_size,
        kwargs={
            "warmup": WARMUP,
            "duration": DURATION,
            "sizes": (64, 8 * 1024, 64 * 1024),
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + result["text"])
    rows = {row["batch_bytes"]: row for row in result["rows"]}
    # Tiny batches cap the ordering layer below the replica's execution rate.
    assert rows[8 * 1024]["throughput_kcps"] > 1.1 * rows[64]["throughput_kcps"]
    # Very large batches should not catastrophically hurt throughput either.
    assert rows[64 * 1024]["throughput_kcps"] > 0.8 * rows[8 * 1024]["throughput_kcps"]
