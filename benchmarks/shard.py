"""Shard-rebalance benchmark (ISSUE 10): live migration vs static skew.

Runs the three shard arms from the experiment driver — static even map
under Zipfian (rank-ordered) skew, the same load after one live
``rebalance_shards`` migration, and a uniform-load reference — and emits
``BENCH_shard.json``.

Absolute ops/s are machine-dependent; the committed file is judged on a
within-run ratio: ``speedup`` (rebalanced throughput over static
throughput under identical skew).  The acceptance floor is a hard 1.3x —
a rebalance that fails to recover at least that much over the
single-hot-group bottleneck means the migration machinery regressed —
plus a tolerance band against the committed ratio.

All timing uses ``time.perf_counter()`` — never the wall clock.

Usage::

    PYTHONPATH=src python benchmarks/shard.py --out BENCH_shard.json
    PYTHONPATH=src python benchmarks/shard.py --smoke --out /tmp/s.json
    PYTHONPATH=src python benchmarks/shard.py --smoke --check BENCH_shard.json
"""

import argparse
import json
import sys

from repro.harness.experiments.shard import (
    KEY_SPACE,
    MPL,
    ZIPF_THETA,
    _uniform_factory,
    _zipf_factory,
    run_shard_arm,
)

SCHEMA_VERSION = 1

#: Hard acceptance floor on the measured speedup, independent of the
#: committed reference (ISSUE 10 acceptance: >= 1.3x static baseline).
SPEEDUP_FLOOR = 1.3


def _scale(args):
    return {
        "warm_ops": 400 if args.smoke else 1200,
        "measure_ops": 1000 if args.smoke else 4000,
        "seed": args.seed,
    }


def _arm_record(arm):
    migration = arm.pop("migration")
    record = dict(
        arm,
        group_share={str(g): round(s, 4) for g, s in arm["group_share"].items()},
        ops_per_s=round(arm["ops_per_s"], 2),
        hot_share=round(arm["hot_share"], 4),
    )
    if migration is not None:
        record["migration"] = {
            "from_version": migration["from_version"],
            "to_version": migration["to_version"],
            "moved_ranges": len(migration["moved_ranges"]),
            "bytes": migration["bytes"],
            "verified": migration["verified"],
            "duration_ms": round(migration["duration_seconds"] * 1000.0, 3),
        }
    return record


def run_shard_benchmark(args):
    scale = _scale(args)
    arms = {}
    for name, rebalance, factory in (
        ("static", False, _zipf_factory(scale["seed"])),
        ("rebalanced", True, _zipf_factory(scale["seed"])),
        ("uniform", False, _uniform_factory(scale["seed"])),
    ):
        arm = run_shard_arm(
            name, rebalance, factory,
            scale["warm_ops"], scale["measure_ops"], scale["seed"],
        )
        print(
            f"{name}: {arm['ops_per_s']:.0f} ops/s, "
            f"hot-group share {arm['hot_share']:.2f}, "
            f"map v{arm['map_version']}",
            file=sys.stderr,
        )
        arms[name] = _arm_record(arm)
    speedup = (
        arms["rebalanced"]["ops_per_s"] / max(arms["static"]["ops_per_s"], 1e-9)
    )
    return {
        "version": SCHEMA_VERSION,
        "config": {
            "smoke": bool(args.smoke),
            "seed": scale["seed"],
            "mpl": MPL,
            "key_space": KEY_SPACE,
            "zipf_theta": ZIPF_THETA,
            "warm_ops": scale["warm_ops"],
            "measure_ops": scale["measure_ops"],
            "runtime": "threaded",
        },
        "arms": arms,
        "summary": {
            "speedup": round(speedup, 4),
            "uniform_ceiling": round(
                arms["uniform"]["ops_per_s"]
                / max(arms["static"]["ops_per_s"], 1e-9),
                4,
            ),
            "migration_verified": arms["rebalanced"]["migration"]["verified"],
        },
    }


def validate_schema(document):
    """Raise ``ValueError`` unless ``document`` has the shard-bench shape."""
    def need(mapping, key, kind, where):
        if key not in mapping:
            raise ValueError(f"missing {where}.{key}")
        if not isinstance(mapping[key], kind):
            raise ValueError(
                f"{where}.{key} must be {kind}, got {type(mapping[key]).__name__}"
            )
        return mapping[key]

    if not isinstance(document, dict):
        raise ValueError("shard document must be an object")
    if document.get("version") != SCHEMA_VERSION:
        raise ValueError(f"unsupported shard version {document.get('version')!r}")
    config = need(document, "config", dict, "$")
    for field in ("mpl", "key_space", "warm_ops", "measure_ops", "seed"):
        need(config, field, int, "config")
    arms = need(document, "arms", dict, "$")
    for name in ("static", "rebalanced", "uniform"):
        record = need(arms, name, dict, "arms")
        where = f"arms.{name}"
        need(record, "ops_per_s", (int, float), where)
        need(record, "hot_share", (int, float), where)
        need(record, "map_version", int, where)
        need(record, "stale_rejections", int, where)
        shares = need(record, "group_share", dict, where)
        if len(shares) != config["mpl"]:
            raise ValueError(f"{where}.group_share must cover every group")
        if record["ops_per_s"] <= 0:
            raise ValueError(f"{where}.ops_per_s must be positive")
    migration = need(arms["rebalanced"], "migration", dict, "arms.rebalanced")
    for field in ("from_version", "to_version", "moved_ranges", "bytes"):
        need(migration, field, int, "arms.rebalanced.migration")
    if migration["verified"] is not True:
        raise ValueError("the hand-off artifact must verify")
    if migration["moved_ranges"] < 1:
        raise ValueError("the rebalance must actually move ranges")
    if arms["rebalanced"]["map_version"] <= arms["static"]["map_version"]:
        raise ValueError("rebalanced arm must install a newer map")
    summary = need(document, "summary", dict, "$")
    for field in ("speedup", "uniform_ceiling"):
        need(summary, field, (int, float), "summary")
    if summary["speedup"] < SPEEDUP_FLOOR:
        raise ValueError(
            f"rebalanced speedup x{summary['speedup']:.2f} is below the "
            f"x{SPEEDUP_FLOOR} acceptance floor"
        )
    return document


def check_against(document, committed_path, tolerance=0.5):
    """CI gate: the measured speedup holds the hard floor and stays
    within a band of the committed run's ratio.

    Absolute ops/s never cross machines; ``speedup`` is measured within
    a single run on a single machine, so it travels.  The hard 1.3x
    floor (also enforced by the schema) is the acceptance criterion; the
    committed-ratio band catches slower drifts.
    """
    with open(committed_path, "r", encoding="utf-8") as handle:
        committed = validate_schema(json.load(handle))
    measured = document["summary"]["speedup"]
    reference = committed["summary"]["speedup"]
    floor = max(SPEEDUP_FLOOR, reference * tolerance)
    status = "ok" if measured >= floor else "REGRESSED"
    print(
        f"gate speedup: measured x{measured:.2f} vs committed "
        f"x{reference:.2f} (floor x{floor:.2f}) -> {status}",
        file=sys.stderr,
    )
    if measured < floor:
        raise SystemExit(
            "shard rebalance speedup regressed: "
            f"measured x{measured:.2f} < floor x{floor:.2f}"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", help="write the benchmark JSON here")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced configuration for CI")
    parser.add_argument("--check", metavar="BENCH",
                        help="compare against a committed benchmark (CI gate)")
    parser.add_argument("--seed", type=int, default=20260808)
    args = parser.parse_args(argv)

    document = validate_schema(run_shard_benchmark(args))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    if args.check:
        check_against(document, args.check)
    return document


if __name__ == "__main__":
    main()
