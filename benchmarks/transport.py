"""Transport benchmark (ISSUE 8): threaded vs process-per-replica runtimes.

Runs the same pipelined read-heavy workload against the two live runtimes
at several worker counts (``mpl``) and emits ``BENCH_transport.json``:

* **threaded** — replicas are thread groups inside one interpreter; the
  in-proc transport hands commands over queues under one GIL;
* **proc** — each replica is its own OS process with its own GIL, fed
  over TCP with length-prefixed CRC-framed binary frames.

Absolute throughput is machine-dependent, so the committed file is judged
on *ratios* measured within a single run: ``proc_vs_threaded`` per worker
count (how much the socket hop costs — or pays for itself — at that
parallelism) and each runtime's own scaling ratio from the smallest to the
largest worker count.  The CI gate is deliberately lenient (default
tolerance 0.5): it exists to catch the transport becoming catastrophically
slower, not to referee scheduler jitter on shared runners.

All timing uses ``time.perf_counter()`` — never the wall clock.

Usage::

    PYTHONPATH=src python benchmarks/transport.py --out BENCH_transport.json
    PYTHONPATH=src python benchmarks/transport.py --smoke --out /tmp/t.json
    PYTHONPATH=src python benchmarks/transport.py --smoke --check BENCH_transport.json
"""

import argparse
import json
import sys
import threading
import time
from collections import deque

from repro.metrics.recorders import LatencyRecorder
from repro.runtime import ProcessPSMRCluster, ThreadedPSMRCluster
from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer
from repro.workload import KVWorkloadGenerator, READ_ONLY_MIX

SCHEMA_VERSION = 1

#: Worker counts (mpl) swept by the benchmark — at least three, so the
#: scaling trend is a curve rather than a single ratio.
WORKER_COUNTS = (1, 2, 4)

RUNTIME_ARMS = ("threaded", "proc")


# ----------------------------------------------------------------------
# Workload driver (both runtimes expose the same client surface)
# ----------------------------------------------------------------------
def _client_loop(cluster, generator, ops, window, recorder, start_barrier, errors):
    try:
        client = cluster.client()
        inflight = deque()
        start_barrier.wait()
        for _ in range(ops):
            name, args, _size = generator.next_invocation()
            submitted = time.perf_counter()
            inflight.append((submitted, client.invoke_async(name, **args)))
            if len(inflight) >= window:
                submitted, handle = inflight.popleft()
                handle.result(timeout=60.0)
                recorder.record(time.perf_counter() - submitted)
        while inflight:
            submitted, handle = inflight.popleft()
            handle.result(timeout=60.0)
            recorder.record(time.perf_counter() - submitted)
    except Exception as exc:  # pragma: no cover - failure reporting
        errors.append(exc)


def _build_cluster(runtime, mpl, *, replicas, key_space, batch):
    if runtime == "threaded":
        return ThreadedPSMRCluster(
            spec=KVSTORE_SPEC,
            service_factory=lambda: KeyValueStoreServer(initial_keys=key_space),
            mpl=mpl,
            num_replicas=replicas,
            barrier_timeout=60.0,
            delivery_batch_size=batch,
        )
    return ProcessPSMRCluster(
        service="kvstore",
        service_args={"initial_keys": key_space},
        mpl=mpl,
        num_replicas=replicas,
        barrier_timeout=60.0,
        delivery_batch_size=batch,
    )


def run_runtime_workload(runtime, mpl, *, ops_per_client, clients, window,
                         replicas, key_space, seed, warmup_ops, batch):
    """One (runtime, worker-count) arm; returns the measurement record."""
    cluster = _build_cluster(
        runtime, mpl, replicas=replicas, key_space=key_space, batch=batch
    )
    recorder = LatencyRecorder()
    with cluster:
        def launch(ops, rec):
            errors = []
            barrier = threading.Barrier(clients + 1)
            threads = [
                threading.Thread(
                    target=_client_loop,
                    args=(
                        cluster,
                        KVWorkloadGenerator(
                            mix=dict(READ_ONLY_MIX),
                            key_space=key_space,
                            distribution="uniform",
                            seed=seed + 100 + index,
                        ),
                        ops,
                        window,
                        rec,
                        barrier,
                        errors,
                    ),
                )
                for index in range(clients)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            started = time.perf_counter()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            if errors:
                raise errors[0]
            return elapsed

        if warmup_ops:
            launch(warmup_ops, LatencyRecorder())
        elapsed = launch(ops_per_client, recorder)
    total_ops = ops_per_client * clients
    summary = recorder.summary()
    return {
        "runtime": runtime,
        "mpl": mpl,
        "ops": total_ops,
        "elapsed_s": elapsed,
        "throughput_ops": total_ops / elapsed if elapsed > 0 else 0.0,
        "latency_mean_s": summary["mean"],
        "latency_p50_s": summary["p50"],
        "latency_p99_s": summary["p99"],
    }


# ----------------------------------------------------------------------
# Orchestration, schema, regression gate
# ----------------------------------------------------------------------
def _scale(args):
    return {
        "ops_per_client": 500 if args.smoke else 2000,
        "clients": 2,
        "window": args.window,
        "replicas": 2,
        "key_space": 1000 if args.smoke else 5000,
        "seed": args.seed,
        "warmup_ops": 100 if args.smoke else 300,
        "batch": args.batch,
    }


def _measure_worker_count(mpl, scale):
    arms = {}
    for runtime in RUNTIME_ARMS:
        arms[runtime] = run_runtime_workload(runtime, mpl, **scale)
    ratio = (
        arms["proc"]["throughput_ops"] / arms["threaded"]["throughput_ops"]
        if arms["threaded"]["throughput_ops"] > 0 else 0.0
    )
    print(
        f"mpl {mpl}: threaded {arms['threaded']['throughput_ops']:.0f} ops/s, "
        f"proc {arms['proc']['throughput_ops']:.0f} ops/s "
        f"(proc/threaded x{ratio:.2f}, proc p99 "
        f"{arms['proc']['latency_p99_s'] * 1e3:.2f} ms)",
        file=sys.stderr,
    )
    return {"threaded": arms["threaded"], "proc": arms["proc"],
            "proc_vs_threaded": ratio}


def run_transport_benchmark(args):
    scale = _scale(args)
    worker_counts = {
        str(mpl): _measure_worker_count(mpl, scale) for mpl in WORKER_COUNTS
    }
    low, high = str(WORKER_COUNTS[0]), str(WORKER_COUNTS[-1])
    scaling = {
        runtime: (
            worker_counts[high][runtime]["throughput_ops"]
            / worker_counts[low][runtime]["throughput_ops"]
            if worker_counts[low][runtime]["throughput_ops"] > 0 else 0.0
        )
        for runtime in RUNTIME_ARMS
    }
    return {
        "version": SCHEMA_VERSION,
        "config": {
            "smoke": bool(args.smoke),
            "batch": args.batch,
            "window": args.window,
            "seed": args.seed,
            "worker_counts": list(WORKER_COUNTS),
            "ops_per_client": scale["ops_per_client"],
            "clients": scale["clients"],
            "replicas": scale["replicas"],
            "key_space": scale["key_space"],
        },
        "worker_counts": worker_counts,
        "scaling": scaling,
    }


def validate_schema(document):
    """Raise ``ValueError`` unless ``document`` has the transport shape."""
    def need(mapping, key, kind, where):
        if key not in mapping:
            raise ValueError(f"missing {where}.{key}")
        if not isinstance(mapping[key], kind):
            raise ValueError(
                f"{where}.{key} must be {kind}, got {type(mapping[key]).__name__}"
            )
        return mapping[key]

    if not isinstance(document, dict):
        raise ValueError("transport document must be an object")
    if document.get("version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported transport version {document.get('version')!r}"
        )
    need(document, "config", dict, "$")
    worker_counts = need(document, "worker_counts", dict, "$")
    if len(worker_counts) < 3:
        raise ValueError("transport benchmark needs >= 3 worker counts")
    for mpl, entry in worker_counts.items():
        where = f"worker_counts.{mpl}"
        need(entry, "proc_vs_threaded", (int, float), where)
        for runtime in RUNTIME_ARMS:
            record = need(entry, runtime, dict, where)
            for field in (
                "throughput_ops", "latency_p50_s", "latency_p99_s",
                "latency_mean_s", "elapsed_s",
            ):
                need(record, field, (int, float), f"{where}.{runtime}")
            need(record, "ops", int, f"{where}.{runtime}")
            need(record, "mpl", int, f"{where}.{runtime}")
    scaling = need(document, "scaling", dict, "$")
    for runtime in RUNTIME_ARMS:
        need(scaling, runtime, (int, float), "scaling")
    return document


def check_against(document, committed_path, tolerance=0.5, remeasure=None):
    """CI regression gate: measured proc/threaded ratios vs the committed file.

    Both numbers in each ratio come from the same run on the same machine,
    so the comparison survives hardware changes.  The tolerance is lenient
    by design — the gate flags the TCP hop becoming categorically more
    expensive (a serialization regression, a lost batching path), and a
    single re-measure separates that from scheduler noise.
    """
    with open(committed_path, "r", encoding="utf-8") as handle:
        committed = validate_schema(json.load(handle))
    failures = []
    for mpl in (str(count) for count in WORKER_COUNTS):
        measured = document["worker_counts"][mpl]["proc_vs_threaded"]
        reference = committed["worker_counts"][mpl]["proc_vs_threaded"]
        floor = reference * tolerance
        if measured < floor and remeasure is not None:
            print(
                f"gate mpl {mpl}: x{measured:.2f} below floor, re-measuring once",
                file=sys.stderr,
            )
            measured = max(measured, remeasure(int(mpl))["proc_vs_threaded"])
        status = "ok" if measured >= floor else "REGRESSED"
        print(
            f"gate mpl {mpl}: measured x{measured:.2f} vs committed "
            f"x{reference:.2f} (floor x{floor:.2f}) -> {status}",
            file=sys.stderr,
        )
        if measured < floor:
            failures.append(mpl)
    if failures:
        raise SystemExit(
            "proc-vs-threaded throughput ratio regressed at mpl: "
            + ", ".join(failures)
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", help="write the benchmark JSON here")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced configuration for CI")
    parser.add_argument("--check", metavar="BENCH",
                        help="compare against a committed benchmark (CI gate)")
    parser.add_argument("--batch", type=int, default=64,
                        help="delivery batch size for both runtimes")
    parser.add_argument("--window", type=int, default=32,
                        help="pipelined invocations per client")
    parser.add_argument("--seed", type=int, default=20260808)
    args = parser.parse_args(argv)

    document = validate_schema(run_transport_benchmark(args))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    if args.check:
        check_against(
            document, args.check,
            remeasure=lambda mpl: _measure_worker_count(mpl, _scale(args)),
        )
    return document


if __name__ == "__main__":
    main()
