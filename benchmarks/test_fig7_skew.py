"""Figure 7: skewed workloads (uniform vs Zipfian keys, 50% updates).

Paper result: with uniform keys P-SMR keeps scaling with threads; with a
Zipfian distribution its throughput is bounded by the most loaded multicast
group.  sP-SMR is bounded by its scheduler under both distributions (and is
slightly *faster* with the Zipfian distribution at low thread counts thanks
to caching of hot keys).  P-SMR scales better than sP-SMR in every case.
"""

from repro.harness.experiments import run_fig7_skew

THREADS = (1, 2, 4, 8)


def test_fig7_skewed_workloads(benchmark):
    # The experiment's own (longer) warmup is kept: the hot-group backlog
    # must reach equilibrium before measuring, see the driver's docstring.
    result = benchmark.pedantic(
        run_fig7_skew,
        kwargs={"thread_counts": THREADS},
        rounds=1,
        iterations=1,
    )
    print("\n" + result["text"])
    series = result["series"]

    def kcps(technique, distribution):
        return [point[1] for point in series[(technique, distribution)]]

    psmr_uniform = kcps("P-SMR", "uniform")
    psmr_zipf = kcps("P-SMR", "zipfian")
    spsmr_uniform = kcps("sP-SMR", "uniform")
    spsmr_zipf = kcps("sP-SMR", "zipfian")

    # P-SMR scales with threads under the uniform distribution.
    assert psmr_uniform[-1] > 2.2 * psmr_uniform[0]
    # Skew costs P-SMR throughput at high thread counts (most loaded group).
    assert psmr_zipf[-1] < psmr_uniform[-1]
    # ... but P-SMR under skew still beats sP-SMR by a wide margin.
    assert psmr_zipf[-1] > 1.5 * spsmr_zipf[-1]
    # sP-SMR is scheduler-bound: adding threads beyond 2 does not help.
    assert max(spsmr_uniform) < 1.6 * spsmr_uniform[0]
    # The caching quirk: Zipfian sP-SMR is at least as fast as uniform at 1 thread.
    assert spsmr_zipf[0] >= spsmr_uniform[0] * 0.98
    # Per-thread normalised throughput: P-SMR scales better than sP-SMR under
    # both distributions (the paper's closing observation for this figure).
    for distribution in ("uniform", "zipfian"):
        psmr_norm = series[("P-SMR", distribution)][-1][2]
        spsmr_norm = series[("sP-SMR", distribution)][-1][2]
        assert psmr_norm > spsmr_norm
