"""Frontend saturation benchmark (ISSUE 9): the HTTP edge under load.

Drives the full service path — HTTP routing, validation, the in-flight
limiter, the asyncio bridge, the replicated KV cluster — with the
closed-loop load rig at increasing client counts and emits
``BENCH_frontend.json``: a saturation curve (throughput + p50/p99/p999
tail latency vs concurrency, with 429 retry pressure), plus one
open-loop (Poisson arrival) record for the arrival-model comparison.

Absolute numbers are machine-dependent; the committed file is judged on
within-run invariants (every acknowledged request accounted for, the
curve actually saturating) and on schema, not on rps.  The full run
sweeps to 1024 concurrent clients (the acceptance floor); ``--smoke``
shrinks request counts but keeps the shape.

All timing uses ``time.perf_counter()`` — never the wall clock.

Usage::

    PYTHONPATH=src python benchmarks/frontend.py --out BENCH_frontend.json
    PYTHONPATH=src python benchmarks/frontend.py --smoke --out /tmp/f.json
    PYTHONPATH=src python benchmarks/frontend.py --smoke --check BENCH_frontend.json
"""

import argparse
import json
import sys

from repro.frontend import ClusterBackend, InFlightLimiter, create_app
from repro.frontend.testing import AsgiClient
from repro.loadgen import LoadConfig, run_load_sync
from repro.runtime import ThreadedPSMRCluster
from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer

SCHEMA_VERSION = 1

#: Closed-loop client counts — the last level is the ≥1k acceptance point.
CONCURRENCY_LEVELS = (64, 256, 1024)

KEY_SPACE = 2048
MPL = 4
REPLICAS = 2
MAX_IN_FLIGHT = 256


def _scale(args):
    return {
        "requests_per_client": 3 if args.smoke else 6,
        "open_clients": 128,
        "open_rate": 3000.0 if args.smoke else 6000.0,
        "seed": args.seed,
    }


def _run_level(client, clients, requests_per_client, seed, arrival="closed",
               open_rate=0.0):
    config = LoadConfig(
        clients=clients,
        requests_per_client=requests_per_client,
        arrival=arrival,
        open_rate=open_rate or 1000.0,
        key_space=KEY_SPACE,
        read_fraction=0.8,
        seed=seed + clients,
    )
    result = run_load_sync(client, config)
    record = result.to_record()
    expected = clients * requests_per_client
    accounted = record["completed"] + record["dropped"] + record["timeouts_503"]
    record["expected_requests"] = expected
    record["unaccounted"] = expected - accounted
    print(
        f"{arrival} {clients} clients: {record['throughput_rps']:.0f} rps, "
        f"p50 {record['latency']['p50'] * 1e3:.2f} ms, "
        f"p99 {record['latency']['p99'] * 1e3:.2f} ms, "
        f"p999 {record['latency']['p999'] * 1e3:.2f} ms, "
        f"429-retries {record['retries_429']}",
        file=sys.stderr,
    )
    return record


def run_frontend_benchmark(args):
    scale = _scale(args)
    cluster = ThreadedPSMRCluster(
        spec=KVSTORE_SPEC,
        service_factory=lambda: KeyValueStoreServer(initial_keys=KEY_SPACE),
        mpl=MPL,
        num_replicas=REPLICAS,
        barrier_timeout=60.0,
        seed=args.seed,
    )
    with cluster:
        limiter = InFlightLimiter(max_in_flight=MAX_IN_FLIGHT)
        app = create_app(kv_backend=ClusterBackend(cluster), limiter=limiter)
        client = AsgiClient(app)
        # Warmup: touch the key space and JIT-warm the whole path.
        run_load_sync(client, LoadConfig(
            clients=32, requests_per_client=4, key_space=KEY_SPACE,
            seed=args.seed,
        ))
        curve = {
            str(clients): _run_level(
                client, clients, scale["requests_per_client"], scale["seed"]
            )
            for clients in CONCURRENCY_LEVELS
        }
        open_loop = _run_level(
            client, scale["open_clients"], scale["requests_per_client"],
            scale["seed"], arrival="open", open_rate=scale["open_rate"],
        )
        limiter_stats = limiter.stats()
    low = curve[str(CONCURRENCY_LEVELS[0])]
    peak_clients = max(
        curve, key=lambda level: curve[level]["throughput_rps"]
    )
    peak = curve[peak_clients]
    top = curve[str(CONCURRENCY_LEVELS[-1])]
    saturation = {
        "peak_clients": int(peak_clients),
        "peak_throughput_rps": peak["throughput_rps"],
        "rise_from_low": (
            peak["throughput_rps"] / low["throughput_rps"]
            if low["throughput_rps"] > 0 else 0.0
        ),
        "top_vs_peak": (
            top["throughput_rps"] / peak["throughput_rps"]
            if peak["throughput_rps"] > 0 else 0.0
        ),
        "tail_amplification_at_top": (
            top["latency"]["p999"] / top["latency"]["p50"]
            if top["latency"]["p50"] > 0 else 0.0
        ),
    }
    return {
        "version": SCHEMA_VERSION,
        "config": {
            "smoke": bool(args.smoke),
            "seed": args.seed,
            "concurrency_levels": list(CONCURRENCY_LEVELS),
            "requests_per_client": scale["requests_per_client"],
            "max_in_flight": MAX_IN_FLIGHT,
            "mpl": MPL,
            "replicas": REPLICAS,
            "key_space": KEY_SPACE,
            "runtime": "threaded",
        },
        "curve": curve,
        "open_loop": open_loop,
        "limiter": limiter_stats,
        "saturation": saturation,
    }


def validate_schema(document):
    """Raise ``ValueError`` unless ``document`` has the frontend shape."""
    def need(mapping, key, kind, where):
        if key not in mapping:
            raise ValueError(f"missing {where}.{key}")
        if not isinstance(mapping[key], kind):
            raise ValueError(
                f"{where}.{key} must be {kind}, got {type(mapping[key]).__name__}"
            )
        return mapping[key]

    if not isinstance(document, dict):
        raise ValueError("frontend document must be an object")
    if document.get("version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported frontend version {document.get('version')!r}"
        )
    config = need(document, "config", dict, "$")
    levels = need(config, "concurrency_levels", list, "config")
    if len(levels) < 3:
        raise ValueError("frontend benchmark needs >= 3 concurrency levels")
    if max(levels) < 1000:
        raise ValueError("saturation curve must reach >= 1000 clients")
    curve = need(document, "curve", dict, "$")
    for level in levels:
        record = need(curve, str(level), dict, "curve")
        where = f"curve.{level}"
        for field in ("throughput_rps", "duration_s"):
            need(record, field, (int, float), where)
        for field in ("completed", "retries_429", "dropped", "timeouts_503",
                      "peak_concurrency", "expected_requests", "unaccounted"):
            need(record, field, int, where)
        latency = need(record, "latency", dict, where)
        for field in ("count", "mean", "p50", "p99", "p999"):
            need(latency, field, (int, float), f"{where}.latency")
        if record["unaccounted"] != 0:
            raise ValueError(f"{where}: {record['unaccounted']} requests lost")
        if record["peak_concurrency"] > level:
            raise ValueError(
                f"{where}: closed-loop concurrency {record['peak_concurrency']} "
                f"exceeded the client count {level}"
            )
    need(document, "open_loop", dict, "$")
    need(document, "limiter", dict, "$")
    saturation = need(document, "saturation", dict, "$")
    for field in ("peak_throughput_rps", "rise_from_low", "top_vs_peak",
                  "tail_amplification_at_top"):
        need(saturation, field, (int, float), "saturation")
    if saturation["peak_throughput_rps"] <= 0:
        raise ValueError("saturation.peak_throughput_rps must be positive")
    return document


def check_against(document, committed_path, tolerance=0.4):
    """CI gate on within-run invariants plus the committed file's schema.

    Absolute throughput never crosses machines, so the gate judges a
    ratio measured within a single run: ``top_vs_peak``, the fraction of
    peak throughput the edge retains at the highest (oversaturated)
    client count.  Backpressure exists precisely to keep that fraction
    high — if the limiter/retry path regresses into congestion collapse,
    the ratio craters and the gate trips.  (Lost requests and
    concurrency-bound violations are already hard schema errors.)
    """
    with open(committed_path, "r", encoding="utf-8") as handle:
        committed = validate_schema(json.load(handle))
    measured = document["saturation"]["top_vs_peak"]
    reference = committed["saturation"]["top_vs_peak"]
    floor = reference * tolerance
    status = "ok" if measured >= floor else "REGRESSED"
    print(
        f"gate top_vs_peak: measured x{measured:.2f} vs committed "
        f"x{reference:.2f} (floor x{floor:.2f}) -> {status}",
        file=sys.stderr,
    )
    if measured < floor:
        raise SystemExit(
            "frontend throughput under saturation collapsed: "
            f"measured x{measured:.2f} < floor x{floor:.2f}"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", help="write the benchmark JSON here")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced configuration for CI")
    parser.add_argument("--check", metavar="BENCH",
                        help="compare against a committed benchmark (CI gate)")
    parser.add_argument("--seed", type=int, default=20260808)
    args = parser.parse_args(argv)

    document = validate_schema(run_frontend_benchmark(args))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    if args.check:
        check_against(document, args.check)
    return document


if __name__ == "__main__":
    main()
