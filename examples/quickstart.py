#!/usr/bin/env python3
"""Quickstart: replicate a key-value store with P-SMR.

Two things are shown:

1. a *functional* P-SMR deployment on real threads — commands issued by
   concurrent clients, executed by 4 worker threads per replica, with both
   replicas converging to the same state;
2. a *performance* comparison in the simulator — P-SMR versus classic SMR
   on a read-only workload (the paper's Figure 3 headline result).

Run with:  python examples/quickstart.py
"""

from repro.harness import format_table, run_kv_technique
from repro.runtime import ThreadedPSMRCluster
from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer
from repro.workload import READ_ONLY_MIX


def functional_demo():
    print("== functional demo: threaded P-SMR cluster ==")
    cluster = ThreadedPSMRCluster(
        spec=KVSTORE_SPEC,
        service_factory=lambda: KeyValueStoreServer(initial_keys=16),
        mpl=4,
        num_replicas=2,
    )
    with cluster:
        client = cluster.client()
        # Independent commands (different keys) execute concurrently.
        for key in range(16):
            client.invoke("update", key=key, value=f"v{key}".encode())
        # Dependent commands (inserts) execute in synchronous mode.
        client.invoke("insert", key=100, value=b"new-entry")
        client.invoke("delete", key=0)
        read = client.invoke("read", key=100)
        print("read(100) ->", read.value)
        snapshots = cluster.replica_snapshots()
        print("replicas converged:", snapshots[0] == snapshots[1])
        print("store size:", len(snapshots[0]))


def performance_demo():
    print("\n== performance demo: P-SMR vs SMR (simulated, read-only) ==")
    rows = []
    for technique, threads in (("SMR", 1), ("P-SMR", 8)):
        result = run_kv_technique(
            technique, threads, mix=READ_ONLY_MIX, warmup=0.01, duration=0.03
        )
        rows.append(result.as_row())
    speedup = rows[1]["throughput_kcps"] / rows[0]["throughput_kcps"]
    print(format_table(rows))
    print(f"P-SMR speedup over SMR: {speedup:.2f}x (paper: ~3.15x)")


if __name__ == "__main__":
    functional_demo()
    performance_demo()
