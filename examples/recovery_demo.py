#!/usr/bin/env python3
"""Crash/recovery demo across both runtimes.

Part 1 drives the threaded cluster through a full lifecycle: load, crash a
replica, keep serving, recover it (checkpoint transfer + log replay) and
show that every replica converges to the same state.

Part 2 runs the simulated recovery experiment: a replica is crashed and
recovered at virtual times while a mixed workload runs, producing the
throughput-over-time and catch-up-time tables.

Run with:  python examples/recovery_demo.py
"""

from repro.harness.experiments import run_recovery
from repro.runtime import ThreadedPSMRCluster
from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer


def threaded_lifecycle():
    print("Threaded cluster: crash and recover a replica")
    cluster = ThreadedPSMRCluster(
        spec=KVSTORE_SPEC,
        service_factory=lambda: KeyValueStoreServer(initial_keys=16),
        mpl=4,
        num_replicas=3,
    )
    with cluster:
        client = cluster.client()
        for key in range(100, 150):
            client.invoke("insert", key=key, value=b"v1")
        cluster.crash_replica(2)
        print("  crashed replica 2; live replicas:",
              [replica.replica_id for replica in cluster.live_replicas()])
        for key in range(100, 125):
            client.invoke("update", key=key, value=b"v2")
        for key in range(150, 170):
            client.invoke("insert", key=key, value=b"v3")
        replica = cluster.recover_replica(2)
        print("  recovered replica 2 from a peer checkpoint + log replay")
        snapshots = cluster.replica_snapshots()
        converged = snapshots[0] == snapshots[1] == snapshots[2]
        print(f"  replicas converged: {converged}  "
              f"(keys per replica: {[len(s) for s in snapshots]}, "
              f"recovered executed {replica.service.commands_executed} commands)")


def simulated_experiment():
    print("\nSimulated recovery experiment (virtual-time crash/recovery)")
    result = run_recovery(duration=0.12)
    print(result["text"])


def main():
    threaded_lifecycle()
    simulated_experiment()


if __name__ == "__main__":
    main()
