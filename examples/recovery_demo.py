#!/usr/bin/env python3
"""Crash/recovery demo across both runtimes.

Part 1 drives the threaded cluster through a full lifecycle: load, crash a
replica, keep serving, recover it (checkpoint transfer + log replay) and
show that every replica converges to the same state.

Part 2 turns on a periodic CheckpointPolicy: the background scheduler keeps
the multicast replay log bounded while commands flow, a replica crashed past
its replayable horizon is recovered via full state transfer, and two
simultaneously-crashed replicas heal from one shared checkpoint.

Part 3 runs the simulated recovery experiments: a replica is crashed and
recovered at virtual times while a mixed workload runs, producing the
throughput-over-time, catch-up-time and checkpoint-scaling tables.

Run with:  python examples/recovery_demo.py
"""

from repro.harness.experiments import run_checkpoint_scaling, run_recovery
from repro.runtime import CheckpointPolicy, ThreadedPSMRCluster
from repro.services.kvstore import KVSTORE_SPEC, KeyValueStoreServer


def threaded_lifecycle():
    print("Threaded cluster: crash and recover a replica")
    cluster = ThreadedPSMRCluster(
        spec=KVSTORE_SPEC,
        service_factory=lambda: KeyValueStoreServer(initial_keys=16),
        mpl=4,
        num_replicas=3,
    )
    with cluster:
        client = cluster.client()
        for key in range(100, 150):
            client.invoke("insert", key=key, value=b"v1")
        cluster.crash_replica(2)
        print("  crashed replica 2; live replicas:",
              [replica.replica_id for replica in cluster.live_replicas()])
        for key in range(100, 125):
            client.invoke("update", key=key, value=b"v2")
        for key in range(150, 170):
            client.invoke("insert", key=key, value=b"v3")
        replica = cluster.recover_replica(2)
        print("  recovered replica 2 from a peer checkpoint + log replay")
        snapshots = cluster.replica_snapshots()
        converged = snapshots[0] == snapshots[1] == snapshots[2]
        print(f"  replicas converged: {converged}  "
              f"(keys per replica: {[len(s) for s in snapshots]}, "
              f"recovered executed {replica.service.commands_executed} commands)")


def periodic_checkpointing():
    print("\nThreaded cluster: periodic checkpoints keep the replay log bounded")
    policy = CheckpointPolicy(every_messages=50, max_replay_lag=200)
    cluster = ThreadedPSMRCluster(
        spec=KVSTORE_SPEC,
        service_factory=lambda: KeyValueStoreServer(initial_keys=16),
        mpl=2,
        num_replicas=3,
        checkpoint_policy=policy,
    )
    with cluster:
        client = cluster.client()
        for step in range(400):
            client.invoke("update", key=step % 16, value=f"v{step}".encode())
        print(f"  after 400 commands: log_size={cluster.multicast.log_size()} "
              f"(checkpoints={cluster.checkpoints_taken}, "
              f"truncations={cluster.truncations})")
        cluster.crash_replicas([1, 2])
        for step in range(300):  # push the victims past their 200-message horizon
            client.invoke("update", key=step % 16, value=b"while-down")
        cluster.periodic_checkpoint()
        print(f"  replica 1 needs full transfer: "
              f"{cluster.replicas[1].needs_full_transfer}")
        cluster.recover_replicas([1, 2])  # one shared checkpoint for both
        snapshots = cluster.replica_snapshots()
        print(f"  recovered both from one checkpoint; converged: "
              f"{snapshots[0] == snapshots[1] == snapshots[2]}")


def simulated_experiment():
    print("\nSimulated recovery experiment (virtual-time crash/recovery)")
    result = run_recovery(duration=0.12)
    print(result["text"])
    print("\nSimulated checkpoint-scaling experiment (recovery vs. state size)")
    result = run_checkpoint_scaling(duration=0.06)
    print(result["text"])


def main():
    threaded_lifecycle()
    periodic_checkpointing()
    simulated_experiment()


if __name__ == "__main__":
    main()
