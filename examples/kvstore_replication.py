#!/usr/bin/env python3
"""Key-value store evaluation: all five techniques under three workloads.

Reproduces, at a reduced scale, the comparisons of paper sections VII-C,
VII-D and VII-F: independent commands, dependent commands and a mixed
workload around P-SMR's breakeven point.

Run with:  python examples/kvstore_replication.py
"""

from repro.harness import format_table
from repro.harness.experiments import (
    run_fig3_independent,
    run_fig4_dependent,
    run_fig6_mixed,
)


def main():
    print("Independent commands (Figure 3)")
    fig3 = run_fig3_independent(duration=0.03)
    print(fig3["text"])

    print("\nDependent commands (Figure 4)")
    fig4 = run_fig4_dependent(duration=0.03)
    print(fig4["text"])

    print("\nMixed workloads (Figure 6)")
    fig6 = run_fig6_mixed(duration=0.03, percentages=(0.01, 1.0, 10.0))
    print(fig6["text"])
    print(
        "measured breakeven:", fig6["measured_breakeven_percent"],
        "% dependent commands (paper: about", fig6["paper_breakeven_percent"], "%)",
    )


if __name__ == "__main__":
    main()
