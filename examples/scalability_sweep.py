#!/usr/bin/env python3
"""Scalability and skew sweeps (paper sections VII-E and VII-G).

Sweeps the number of worker threads for P-SMR and sP-SMR under an
independent workload (Figure 5) and under a skewed 50% update workload with
uniform and Zipfian key selection (Figure 7), printing throughput and the
normalised per-thread throughput.

Run with:  python examples/scalability_sweep.py
"""

from repro.harness.experiments import run_fig5_scalability, run_fig7_skew


def main():
    print("Scalability with the number of threads (Figure 5, independent workload)")
    fig5 = run_fig5_scalability(
        duration=0.03,
        techniques=("sP-SMR", "P-SMR"),
        thread_counts=(1, 2, 4, 8),
        workloads=("independent",),
    )
    print(fig5["text"])

    print("\nSkewed workloads (Figure 7, 50% updates / 50% reads)")
    fig7 = run_fig7_skew(duration=0.03, thread_counts=(1, 4, 8))
    print(fig7["text"])

    print("\nReading the results:")
    print(" - only P-SMR keeps gaining throughput as threads are added;")
    print(" - under the Zipfian distribution P-SMR is bounded by its most")
    print("   loaded multicast group, sP-SMR by its scheduler.")


if __name__ == "__main__":
    main()
