#!/usr/bin/env python3
"""NetFS: a replicated networked file system on P-SMR (paper section V-B).

The functional part runs a threaded P-SMR cluster whose state machine is an
in-memory file system: directories and files are created, written and read
back through the replicated command path, and both replicas end up with the
same tree.  The performance part reproduces the Figure 8 comparison in the
simulator.

Run with:  python examples/netfs_demo.py
"""

from repro.harness.experiments import run_fig8_netfs
from repro.runtime import ThreadedPSMRCluster
from repro.services.netfs import NETFS_SPEC, NetFSServer


def functional_demo():
    print("== functional demo: replicated file system ==")
    cluster = ThreadedPSMRCluster(
        spec=NETFS_SPEC,
        service_factory=NetFSServer,
        mpl=4,
        num_replicas=2,
    )
    with cluster:
        client = cluster.client()
        client.invoke("mkdir", path="/projects")
        client.invoke("mkdir", path="/projects/psmr")
        client.invoke("mknod", path="/projects/psmr/notes.txt")
        client.invoke("write", path="/projects/psmr/notes.txt",
                      data=b"parallel state-machine replication", offset=0)
        listing = client.invoke("readdir", path="/projects/psmr")
        content = client.invoke("read", path="/projects/psmr/notes.txt", size=64, offset=0)
        stat = client.invoke("lstat", path="/projects/psmr/notes.txt")
        print("readdir ->", listing.value)
        print("read    ->", content.value)
        print("size    ->", stat.value.size, "bytes")
        snapshots = cluster.replica_snapshots()
        print("replicas converged:", snapshots[0] == snapshots[1])


def performance_demo():
    print("\n== performance demo: NetFS reads and writes (Figure 8) ==")
    fig8 = run_fig8_netfs(duration=0.03)
    print(fig8["text"])


if __name__ == "__main__":
    functional_demo()
    performance_demo()
